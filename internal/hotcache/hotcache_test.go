package hotcache

import (
	"fmt"
	"sync"
	"testing"
)

func fill(c *Cache, key, val string) {
	c.Fill([]byte(key), []byte(val), false, c.Snapshot([]byte(key)))
}

func TestFillGet(t *testing.T) {
	c := New(1 << 20)
	if _, _, ok := c.Get([]byte("k")); ok {
		t.Fatal("hit on empty cache")
	}
	fill(c, "k", "v1")
	v, neg, ok := c.Get([]byte("k"))
	if !ok || neg || string(v) != "v1" {
		t.Fatalf("Get = %q neg=%v ok=%v", v, neg, ok)
	}
	// The returned slice is a private copy.
	v[0] = 'X'
	if v2, _, _ := c.Get([]byte("k")); string(v2) != "v1" {
		t.Fatalf("cached value mutated through returned slice: %q", v2)
	}
}

func TestNegativeEntry(t *testing.T) {
	c := New(1 << 20)
	k := []byte("missing")
	c.Fill(k, nil, true, c.Snapshot(k))
	v, neg, ok := c.Get(k)
	if !ok || !neg || v != nil {
		t.Fatalf("negative Get = %q neg=%v ok=%v", v, neg, ok)
	}
	st := c.Stats()
	if st.NegHits != 1 {
		t.Fatalf("neg_hits = %d", st.NegHits)
	}
	// A write flips the negative entry invisible.
	c.Invalidate(k)
	if _, _, ok := c.Get(k); ok {
		t.Fatal("negative entry served after invalidation")
	}
}

func TestInvalidateHidesEntry(t *testing.T) {
	c := New(1 << 20)
	fill(c, "k", "old")
	c.Invalidate([]byte("k"))
	if _, _, ok := c.Get([]byte("k")); ok {
		t.Fatal("stale entry served after Invalidate")
	}
	// Refill under the new watermark works again.
	fill(c, "k", "new")
	if v, _, ok := c.Get([]byte("k")); !ok || string(v) != "new" {
		t.Fatalf("refill Get = %q %v", v, ok)
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d", st.Invalidations)
	}
}

func TestStaleTicketFillRejected(t *testing.T) {
	c := New(1 << 20)
	k := []byte("k")
	ticket := c.Snapshot(k)
	// A write lands between the reader's snapshot and its fill: the value
	// the reader got from the engine may predate the write, so the fill
	// must be dropped.
	c.Invalidate(k)
	c.Fill(k, []byte("stale"), false, ticket)
	if _, _, ok := c.Get(k); ok {
		t.Fatal("fill with a stale ticket was served")
	}
	if st := c.Stats(); st.Fills != 0 || st.Entries != 0 {
		t.Fatalf("stale fill was inserted: %+v", st)
	}
}

func TestBudgetEviction(t *testing.T) {
	c := New(numShards * 1024) // 1 KiB per shard
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		c.Fill(k, make([]byte, 100), false, c.Snapshot(k))
	}
	st := c.Stats()
	if st.Bytes > numShards*1024 {
		t.Fatalf("cache over budget: %d bytes", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	if st.Entries == 0 {
		t.Fatal("cache emptied itself")
	}
}

func TestOversizedFillSkipped(t *testing.T) {
	c := New(numShards * 1024) // 1 KiB per shard
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("small-%03d", i))
		c.Fill(k, make([]byte, 64), false, c.Snapshot(k))
	}
	before := c.Stats()
	big := []byte("big")
	c.Fill(big, make([]byte, 4096), false, c.Snapshot(big))
	after := c.Stats()
	if _, _, ok := c.Get(big); ok {
		t.Fatal("oversized value cached")
	}
	if after.Entries != before.Entries || after.Evictions != before.Evictions {
		t.Fatalf("oversized fill churned the shard: before=%+v after=%+v", before, after)
	}
}

func TestClockSecondChance(t *testing.T) {
	c := New(numShards * 1024)
	// Land enough entries to force eviction, touching "hot" repeatedly —
	// its reference bit should keep it resident through clock passes.
	hot := []byte("hot-key")
	c.Fill(hot, make([]byte, 64), false, c.Snapshot(hot))
	for i := 0; i < 500; i++ {
		c.Get(hot)
		k := []byte(fmt.Sprintf("cold-%04d", i))
		c.Fill(k, make([]byte, 64), false, c.Snapshot(k))
	}
	if _, _, ok := c.Get(hot); !ok {
		t.Fatal("hot entry evicted despite constant references")
	}
}

func TestDeadEntriesReclaimed(t *testing.T) {
	c := New(numShards * 64 * 1024)
	// Invalidate-then-Get marks entries dead without running the clock
	// (the shard stays under budget); the ring must not grow unboundedly.
	for i := 0; i < 10000; i++ {
		k := []byte("churn-key")
		c.Fill(k, []byte("v"), false, c.Snapshot(k))
		c.Invalidate(k)
		c.Get(k) // observes the stale ticket, marks the entry dead
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if len(s.ring) > 2*len(s.m)+32 {
			t.Fatalf("shard %d ring grew unboundedly: ring=%d live=%d", i, len(s.ring), len(s.m))
		}
		s.mu.Unlock()
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	c.Fill([]byte("k"), []byte("v"), false, c.Snapshot([]byte("k")))
	c.Invalidate([]byte("k"))
	if _, _, ok := c.Get([]byte("k")); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats nonzero: %+v", st)
	}
}

func TestShardDistribution(t *testing.T) {
	c := New(64 << 20)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%012d", i))
		c.Fill(k, []byte("v"), false, c.Snapshot(k))
	}
	st := c.Stats()
	if st.Entries != n {
		t.Fatalf("entries = %d, want %d", st.Entries, n)
	}
	avg := n / numShards
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		got := len(s.m)
		s.mu.Unlock()
		if got < avg/2 || got > avg*2 {
			t.Errorf("shard %d holds %d entries, want within [%d,%d]", i, got, avg/2, avg*2)
		}
	}
}

// TestConcurrentCoherence hammers one key with racing fill/invalidate/get
// from many goroutines: after every writer's invalidation is visible, no
// Get may return a value older than the last write. Run with -race.
func TestConcurrentCoherence(t *testing.T) {
	c := New(1 << 20)
	k := []byte("contended")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				ticket := c.Snapshot(k)
				c.Fill(k, []byte(fmt.Sprintf("v%d", i)), false, ticket)
				c.Get(k)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Invalidate(k)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				c.Get(k)
			}
		}()
	}
	wg.Wait()

	// Final determinism check: one last invalidate makes everything
	// currently cached invisible.
	c.Invalidate(k)
	if _, _, ok := c.Get(k); ok {
		t.Fatal("entry served past a final invalidation")
	}
}
