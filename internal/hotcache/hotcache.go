// Package hotcache implements the accessing layer's hot-key read cache:
// a sharded, byte-budgeted map of recently read values that sits ABOVE
// the worker queues, so a hit never pays queue admission or a worker
// round-trip. Coherence rides on the same apply-order the store's GSN
// machinery already enforces, via striped invalidation watermarks:
//
//   - Every key hashes to one of a fixed number of stripes, each an
//     atomic counter ("watermark").
//   - A reader that misses snapshots its key's stripe BEFORE submitting
//     the engine read (a "ticket"), and may Fill the cache afterwards
//     only while the stripe still equals the ticket.
//   - A writer bumps the stripe of every written key after the engine
//     applied the batch and before the write is acknowledged.
//   - A cached entry is served only while the stripe still equals the
//     entry's ticket (every Get revalidates).
//
// The protocol is conservative: any write racing a read-and-fill either
// bumps the stripe before the Fill (the fill is rejected) or after it
// (the entry's ticket is stale, so it is invisible to every later Get).
// A value can be served concurrently with an in-flight write to the same
// key only while that write is unacknowledged — which is exactly the
// window where serving the pre-write value is linearizable. Because the
// bump happens before the writer's acknowledgement, read-your-writes
// holds. Stripe collisions only ever invalidate more than necessary,
// never less.
//
// Misses are cached too (negative entries), under the same stripe rules:
// a later write to the key bumps the stripe and the "not found" stops
// being served.
package hotcache

import (
	"sync"
	"sync/atomic"
)

const (
	// stripes is the invalidation watermark count (power of two). More
	// stripes mean fewer false invalidations from colliding keys; 4096
	// costs 32 KiB per cache.
	stripes     = 4096
	stripeMask  = stripes - 1
	numShards   = 16
	shardMask   = numShards - 1
	// entryOverhead approximates per-entry bookkeeping (map slot, ring
	// slot, header) charged against the byte budget.
	entryOverhead = 64
)

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits          int64 // positive hits served from the cache
	NegHits       int64 // negative ("not found") hits served
	Misses        int64 // lookups that fell through to the store
	Fills         int64 // entries inserted (ticket still valid)
	Evictions     int64 // entries evicted by the clock for space
	Invalidations int64 // stripe bumps performed by writers
	Bytes         int64 // resident bytes (values + overhead)
	Entries       int64 // resident entries (including negative)
}

// Cache is the hot-key read cache. Safe for concurrent use; a nil
// *Cache is valid and caches nothing, so callers need no nil checks.
type Cache struct {
	marks         [stripes]atomic.Uint64
	invalidations atomic.Int64
	shards        [numShards]shard
}

type entry struct {
	key    string
	val    []byte
	neg    bool   // negative entry: the key was absent
	ticket uint64 // stripe value the fill was snapshotted under
	ref    bool   // clock reference bit
	dead   bool   // removed from the map, awaiting ring cleanup
}

func (e *entry) cost() int64 {
	return int64(len(e.key)) + int64(len(e.val)) + entryOverhead
}

type shard struct {
	mu     sync.Mutex
	budget int64
	used   int64
	m      map[string]*entry
	ring   []*entry // clock ring; hand walks it looking for victims
	hand   int

	hits    int64
	negHits int64
	misses  int64
	fills   int64
	evicted int64
}

// New creates a cache with the given total byte budget (split evenly
// across shards). A non-positive budget yields a cache that never fills.
func New(budget int64) *Cache {
	c := &Cache{}
	per := budget / numShards
	for i := range c.shards {
		c.shards[i] = shard{budget: per, m: make(map[string]*entry)}
	}
	return c
}

// hash is FNV-1a 64 with an avalanche fold; stripe and shard indices are
// drawn from different halves so a stripe collision is not automatically
// a shard collision.
func hash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Snapshot returns the key's current invalidation watermark — the ticket
// a reader must take BEFORE submitting the engine read it may later Fill
// the result of.
func (c *Cache) Snapshot(key []byte) uint64 {
	if c == nil {
		return 0
	}
	return c.marks[hash(key)&stripeMask].Load()
}

// Invalidate bumps the key's watermark. Writers call it for every
// written key after the engine applied the write and before the write is
// acknowledged; any cached entry for the key (and, collaterally, for
// stripe-colliding keys) stops being served. Lock-free.
func (c *Cache) Invalidate(key []byte) {
	if c == nil {
		return
	}
	c.marks[hash(key)&stripeMask].Add(1)
	c.invalidations.Add(1)
}

// Get returns the cached value for key. ok reports a usable hit;
// negative reports that the hit is a cached "not found". A stale entry
// (watermark moved past its ticket) is removed and reported as a miss.
// The returned slice is a private copy — callers own it.
func (c *Cache) Get(key []byte) (val []byte, negative, ok bool) {
	if c == nil {
		return nil, false, false
	}
	h := hash(key)
	cur := c.marks[h&stripeMask].Load()
	s := &c.shards[(h>>32)&shardMask]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, present := s.m[string(key)]
	if !present {
		s.misses++
		return nil, false, false
	}
	if e.ticket != cur {
		// Invalidated since it was filled: drop it so the space frees
		// without waiting for the clock.
		delete(s.m, e.key)
		e.dead = true
		s.used -= e.cost()
		s.misses++
		return nil, false, false
	}
	e.ref = true
	if e.neg {
		s.negHits++
		return nil, true, true
	}
	s.hits++
	return append([]byte(nil), e.val...), false, true
}

// Fill inserts the result of an engine read performed under ticket (from
// Snapshot). The insert is dropped if the key's watermark has moved —
// the value may predate a concurrent write — or if the entry could never
// fit the shard budget. negative records a "not found" result. The cache
// copies key and val; callers keep ownership of both.
func (c *Cache) Fill(key, val []byte, negative bool, ticket uint64) {
	if c == nil {
		return
	}
	h := hash(key)
	if c.marks[h&stripeMask].Load() != ticket {
		return
	}
	s := &c.shards[(h>>32)&shardMask]
	s.mu.Lock()
	defer s.mu.Unlock()
	// Revalidate under the shard lock: a bump between the check above and
	// the lock acquisition must not produce a servable entry. (Even if it
	// slipped through, the entry's stale ticket would keep it invisible —
	// this just avoids wasting budget on it.)
	if c.marks[h&stripeMask].Load() != ticket {
		return
	}
	cost := int64(len(key)) + int64(len(val)) + entryOverhead
	if cost > s.budget {
		return // could never fit; inserting would just churn the shard
	}
	if old, ok := s.m[string(key)]; ok {
		s.used -= old.cost()
		old.dead = true
		delete(s.m, old.key)
	}
	// New entries start with the reference bit clear: an entry that is
	// never touched again is the first victim (scan resistance), while
	// anything re-read before the hand arrives earns its second chance.
	e := &entry{
		key:    string(key),
		neg:    negative,
		ticket: ticket,
	}
	if !negative {
		e.val = append([]byte(nil), val...)
	}
	s.m[e.key] = e
	s.ring = append(s.ring, e)
	s.used += cost
	s.fills++
	s.evict()
	// Dead entries (invalidated by Get) are normally reclaimed by the
	// clock, but a shard living under budget never runs it — compact when
	// the ring is mostly corpses so it cannot grow without bound.
	if len(s.ring) > 2*len(s.m)+16 {
		s.compact()
	}
}

// compact rebuilds the ring without dead entries. Called with s.mu held.
func (s *shard) compact() {
	live := s.ring[:0]
	for _, e := range s.ring {
		if !e.dead {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(s.ring); i++ {
		s.ring[i] = nil
	}
	s.ring = live
	s.hand = 0
}

// evict runs the clock until the shard fits its budget: dead entries are
// reclaimed, referenced entries get a second chance, everything else is
// a victim. Called with s.mu held.
func (s *shard) evict() {
	for s.used > s.budget && len(s.ring) > 0 {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		e := s.ring[s.hand]
		if e.dead {
			s.removeAtHand()
			continue
		}
		if e.ref {
			e.ref = false
			s.hand++
			continue
		}
		delete(s.m, e.key)
		s.used -= e.cost()
		s.evicted++
		s.removeAtHand()
	}
}

// removeAtHand drops ring[hand] by swapping the tail in — the clock is
// approximate, so the reordering is harmless and keeps removal O(1).
func (s *shard) removeAtHand() {
	last := len(s.ring) - 1
	s.ring[s.hand] = s.ring[last]
	s.ring[last] = nil
	s.ring = s.ring[:last]
}

// Stats sums the per-shard counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{Invalidations: c.invalidations.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.NegHits += s.negHits
		st.Misses += s.misses
		st.Fills += s.fills
		st.Evictions += s.evicted
		st.Bytes += s.used
		st.Entries += int64(len(s.m))
		s.mu.Unlock()
	}
	return st
}
