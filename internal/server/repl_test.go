package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"p2kvs/internal/replboot"
	"p2kvs/internal/vfs"
)

// replNode is one in-process replication-enabled server over a private
// MemFS, as netbench -cluster and the cluster client tests boot them.
type replNode struct {
	srv  *Server
	addr string
	done chan struct{}
}

// startReplNode boots a replication-enabled node. replicaOf, when
// non-empty, makes it follow that primary from startup.
func startReplNode(t *testing.T, workers int, backlog int64, replicaOf string) *replNode {
	t.Helper()
	st, err := replboot.MemStore(workers, backlog)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{
		Store:        st,
		ReplDir:      "repl",
		ReplFS:       vfs.NewMem(),
		RestoreStore: replboot.MemRestore(backlog),
		ReplicaOf:    replicaOf,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &replNode{srv: srv, addr: lis.Addr().String(), done: make(chan struct{})}
	go func() {
		srv.Serve(lis)
		close(n.done)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		select {
		case <-n.done:
		case <-time.After(10 * time.Second):
			t.Error("replNode Serve did not return")
		}
	})
	return n
}

func (n *replNode) dial(t *testing.T) *client {
	t.Helper()
	nc, err := net.Dial("tcp", n.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &client{nc: nc, rd: NewReader(nc), wr: NewWriter(nc)}
}

// infoMap fetches INFO and parses it into a key→value map.
func infoMap(t *testing.T, c *client) map[string]string {
	t.Helper()
	rep := c.do(t, "INFO")
	m := make(map[string]string)
	for _, line := range strings.Split(string(rep.Str), "\r\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && !strings.HasPrefix(k, "#") {
			m[k] = v
		}
	}
	return m
}

func infoInt(t *testing.T, c *client, key string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(infoMap(t, c)[key], 10, 64)
	if err != nil {
		t.Fatalf("INFO %s: %v", key, err)
	}
	return v
}

// dumpAll walks SCAN+MGET and returns the full ordered key→value dump —
// the byte-identical convergence check.
func dumpAll(t *testing.T, c *client) string {
	t.Helper()
	var b strings.Builder
	cursor := "0"
	for {
		rep := c.do(t, "SCAN", cursor, "COUNT", "1000")
		if rep.Kind != '*' || len(rep.Elems) != 2 {
			t.Fatalf("bad SCAN reply: %+v", rep)
		}
		keys := rep.Elems[1].Elems
		if len(keys) > 0 {
			args := []string{"MGET"}
			for _, k := range keys {
				args = append(args, string(k.Str))
			}
			vals := c.do(t, args...)
			for i, k := range keys {
				fmt.Fprintf(&b, "%s=%s\n", k.Str, vals.Elems[i].Str)
			}
		}
		cursor = string(rep.Elems[0].Str)
		if cursor == "0" {
			return b.String()
		}
	}
}

func mustOK(t *testing.T, rep Reply) {
	t.Helper()
	if rep.Kind == '-' {
		t.Fatalf("unexpected error reply: %s", rep.Str)
	}
}

// waitConverged waits until the replica serves the probe key with the
// expected value.
func waitConverged(t *testing.T, c *client, key, want string) {
	t.Helper()
	waitFor(t, func() bool {
		rep := c.do(t, "GET", key)
		return !rep.Nil && string(rep.Str) == want
	})
}

// TestReplFullSyncAndStream is the happy path end to end: a replica
// bootstraps from a primary that already has data (full sync), tails
// the live stream, enforces read-only mode, and reports both roles
// through INFO.
func TestReplFullSyncAndStream(t *testing.T) {
	prim := startReplNode(t, 4, 1<<20, "")
	pc := prim.dial(t)
	for i := 0; i < 200; i++ {
		mustOK(t, pc.do(t, "SET", fmt.Sprintf("seed-%03d", i), fmt.Sprintf("v%d", i)))
	}

	rep := startReplNode(t, 4, 1<<20, prim.addr)
	rc := rep.dial(t)
	waitConverged(t, rc, "seed-199", "v199")

	// Live stream after the bootstrap image.
	for i := 0; i < 100; i++ {
		mustOK(t, pc.do(t, "SET", fmt.Sprintf("live-%03d", i), "x"))
	}
	waitConverged(t, rc, "live-099", "x")
	waitFor(t, func() bool { return dumpAll(t, pc) == dumpAll(t, rc) })

	// Roles and counters.
	pi, ri := infoMap(t, pc), infoMap(t, rc)
	if pi["role"] != "master" || ri["role"] != "replica" {
		t.Fatalf("roles: primary=%q replica=%q", pi["role"], ri["role"])
	}
	if pi["repl_full_syncs_served"] != "1" {
		t.Fatalf("repl_full_syncs_served=%s, want 1", pi["repl_full_syncs_served"])
	}
	if ri["replica_full_syncs"] != "1" {
		t.Fatalf("replica_full_syncs=%s, want 1", ri["replica_full_syncs"])
	}
	if ri["master_link_status"] != "up" {
		t.Fatalf("master_link_status=%s", ri["master_link_status"])
	}
	if pi["connected_replicas"] != "1" {
		t.Fatalf("connected_replicas=%s", pi["connected_replicas"])
	}

	// Read-only enforcement, including the coalesced-run write path.
	for _, cmd := range [][]string{
		{"SET", "w", "1"}, {"DEL", "w"}, {"MSET", "a", "1", "b", "2"},
	} {
		r := rc.do(t, cmd...)
		if r.Kind != '-' || !strings.HasPrefix(string(r.Str), "READONLY replica") {
			t.Fatalf("%v on replica: got %q, want -READONLY replica", cmd, r.Str)
		}
	}
	runReplies := rc.pipeline(t, []string{"SET", "r1", "x"}, []string{"SET", "r2", "x"}, []string{"SET", "r3", "x"})
	for i, r := range runReplies {
		if r.Kind != '-' || !strings.HasPrefix(string(r.Str), "READONLY replica") {
			t.Fatalf("coalesced SET %d on replica: got %q", i, r.Str)
		}
	}
	// Reads still served.
	if got := rc.do(t, "GET", "seed-000"); string(got.Str) != "v0" {
		t.Fatalf("replica GET seed-000 = %q", got.Str)
	}
}

// TestReplPartialResync proves the GSN-cursor resume: a replica that
// detaches and re-attaches within the backlog window continues the
// stream (no second full sync) from its persisted cursors.
func TestReplPartialResync(t *testing.T) {
	prim := startReplNode(t, 2, 1<<20, "")
	pc := prim.dial(t)
	mustOK(t, pc.do(t, "SET", "k0", "v0"))

	rep := startReplNode(t, 2, 1<<20, prim.addr)
	rc := rep.dial(t)
	waitConverged(t, rc, "k0", "v0")

	// Detach; the lineage + cursors persisted in REPLSTATE survive.
	mustOK(t, rc.do(t, "REPLICAOF", "NO", "ONE"))
	// Primary advances while the replica is away — well inside 1 MiB.
	for i := 0; i < 300; i++ {
		mustOK(t, pc.do(t, "SET", fmt.Sprintf("away-%03d", i), "y"))
	}
	// Re-attach: must resume via partial sync.
	host, port, _ := net.SplitHostPort(prim.addr)
	mustOK(t, rc.do(t, "REPLICAOF", host, port))
	waitConverged(t, rc, "away-299", "y")
	waitFor(t, func() bool { return dumpAll(t, pc) == dumpAll(t, rc) })

	if n := infoInt(t, pc, "repl_partial_syncs_served"); n < 1 {
		t.Fatalf("repl_partial_syncs_served=%d, want >=1", n)
	}
	if n := infoInt(t, pc, "repl_full_syncs_served"); n != 1 {
		t.Fatalf("repl_full_syncs_served=%d, want exactly the bootstrap one", n)
	}
	if n := infoInt(t, rc, "replica_partial_syncs"); n < 1 {
		t.Fatalf("replica_partial_syncs=%d, want >=1", n)
	}
}

// TestReplOutOfWindowFullSyncFallback starves the backlog: with the
// replica detached, the primary writes far past the tiny retention
// budget, so the re-attach cannot partial-sync and must fall back to a
// full sync — and still converge to an identical dump.
func TestReplOutOfWindowFullSyncFallback(t *testing.T) {
	prim := startReplNode(t, 2, 8<<10, "") // 8 KiB backlog
	pc := prim.dial(t)
	mustOK(t, pc.do(t, "SET", "k0", "v0"))

	rep := startReplNode(t, 2, 8<<10, prim.addr)
	rc := rep.dial(t)
	waitConverged(t, rc, "k0", "v0")
	mustOK(t, rc.do(t, "REPLICAOF", "NO", "ONE"))

	// Blow through the 8 KiB window while detached.
	val := strings.Repeat("z", 256)
	for i := 0; i < 400; i++ {
		mustOK(t, pc.do(t, "SET", fmt.Sprintf("big-%04d", i), val))
	}
	host, port, _ := net.SplitHostPort(prim.addr)
	mustOK(t, rc.do(t, "REPLICAOF", host, port))
	waitConverged(t, rc, "big-0399", val)
	waitFor(t, func() bool { return dumpAll(t, pc) == dumpAll(t, rc) })

	if n := infoInt(t, pc, "repl_full_syncs_served"); n != 2 {
		t.Fatalf("repl_full_syncs_served=%d, want 2 (bootstrap + fallback)", n)
	}
	if n := infoInt(t, rc, "replica_full_syncs"); n != 2 {
		t.Fatalf("replica_full_syncs=%d, want 2", n)
	}
}

// TestReplicaOfNoOnePromotes verifies promotion: after REPLICAOF NO
// ONE the node accepts writes again and reports role:master.
func TestReplicaOfNoOnePromotes(t *testing.T) {
	prim := startReplNode(t, 2, 1<<20, "")
	pc := prim.dial(t)
	mustOK(t, pc.do(t, "SET", "k", "v"))

	rep := startReplNode(t, 2, 1<<20, prim.addr)
	rc := rep.dial(t)
	waitConverged(t, rc, "k", "v")
	if r := rc.do(t, "SET", "p", "1"); r.Kind != '-' {
		t.Fatal("replica accepted a write before promotion")
	}
	mustOK(t, rc.do(t, "REPLICAOF", "NO", "ONE"))
	mustOK(t, rc.do(t, "SET", "p", "1"))
	if got := rc.do(t, "GET", "p"); string(got.Str) != "1" {
		t.Fatalf("promoted node GET p = %q", got.Str)
	}
	if role := infoMap(t, rc)["role"]; role != "master" {
		t.Fatalf("role after promotion = %q", role)
	}
}

// TestReplDisabledErrors covers the guard rails: PSYNC and REPLICAOF
// against a store opened without a replication backlog fail loudly.
func TestReplDisabledErrors(t *testing.T) {
	ts := startTestServer(t, 2, nil, nil, Config{})
	c := dialTest(t, ts)
	if r := c.do(t, "PSYNC", "?"); r.Kind != '-' || !strings.Contains(string(r.Str), "replication disabled") {
		t.Fatalf("PSYNC without backlog: %q", r.Str)
	}
	if r := c.do(t, "REPLICAOF", "127.0.0.1", "1"); r.Kind != '-' {
		t.Fatalf("REPLICAOF without backlog: %q", r.Str)
	}
}

// delayProxy forwards one TCP connection pair, delaying every chunk in
// the primary→replica direction by d — injected link latency for the
// staleness bound test.
type delayProxy struct {
	lis   net.Listener
	addr  string
	delay time.Duration
}

func startDelayProxy(t *testing.T, target string, d time.Duration) *delayProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &delayProxy{lis: lis, addr: lis.Addr().String(), delay: d}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			in, err := lis.Accept()
			if err != nil {
				return
			}
			out, err := net.Dial("tcp", target)
			if err != nil {
				in.Close()
				continue
			}
			go func() { // replica → primary: undelayed
				io.Copy(out, in)
				out.Close()
				in.Close()
			}()
			go func() { // primary → replica: delay each chunk
				buf := make([]byte, 32<<10)
				for {
					n, err := out.Read(buf)
					if n > 0 {
						time.Sleep(d)
						if _, werr := in.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				out.Close()
				in.Close()
			}()
		}
	}()
	return p
}

// TestReplicaMonotonicReadsAndStalenessBound is satellite 3: under an
// injected 30 ms link delay, (a) a single-key counter observed through
// the replica never goes backwards (per-worker GSN order is preserved
// end to end), and (b) every primary write becomes visible on the
// replica within a bound that is link delay + ack slack, not seconds.
func TestReplicaMonotonicReadsAndStalenessBound(t *testing.T) {
	const linkDelay = 30 * time.Millisecond
	prim := startReplNode(t, 2, 1<<20, "")
	proxy := startDelayProxy(t, prim.addr, linkDelay)
	rep := startReplNode(t, 2, 1<<20, proxy.addr)

	pc := prim.dial(t)
	rc := rep.dial(t)
	mustOK(t, pc.do(t, "SET", "ctr", "0"))
	waitConverged(t, rc, "ctr", "0")

	// Reader goroutine: observed counter values must be non-decreasing.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	var violation atomic.Value
	go func() {
		defer close(readerDone)
		nc, err := net.Dial("tcp", rep.addr)
		if err != nil {
			violation.Store(fmt.Sprintf("reader dial: %v", err))
			return
		}
		defer nc.Close()
		c := &client{nc: nc, rd: NewReader(nc), wr: NewWriter(nc)}
		wr, rd := c.wr, c.rd
		last := -1
		for {
			select {
			case <-stop:
				return
			default:
			}
			wr.WriteCommand([]byte("GET"), []byte("ctr"))
			if wr.Flush() != nil {
				return
			}
			rep, err := rd.ReadReply()
			if err != nil {
				return
			}
			v, err := strconv.Atoi(string(rep.Str))
			if err != nil {
				violation.Store(fmt.Sprintf("non-numeric ctr %q", rep.Str))
				return
			}
			if v < last {
				violation.Store(fmt.Sprintf("monotonic reads violated: %d after %d", v, last))
				return
			}
			last = v
		}
	}()

	// Writer: bump the counter, measuring per-write visibility latency.
	const writes = 40
	var worst time.Duration
	for i := 1; i <= writes; i++ {
		v := strconv.Itoa(i)
		mustOK(t, pc.do(t, "SET", "ctr", v))
		start := time.Now()
		waitConverged(t, rc, "ctr", v)
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	close(stop)
	<-readerDone
	if msg := violation.Load(); msg != nil {
		t.Fatal(msg)
	}
	// Bound: link delay + ack/apply slack. The CI-safe ceiling is loose
	// (2 s); the point is that staleness tracks the link delay rather
	// than growing with writes or drifting unboundedly.
	if worst > 2*time.Second {
		t.Fatalf("worst-case staleness %v exceeds bound", worst)
	}
	t.Logf("worst-case replica staleness under %v link delay: %v", linkDelay, worst)
}
