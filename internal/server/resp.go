// Package server is the network serving layer: a RESP2-compatible
// (Redis wire protocol) TCP server over the p2KVS accessing layer, so
// stock Redis clients and redis-cli can drive the store. Pipelined
// client commands are coalesced into the store's batch entry points
// (WriteCtx / MultiGetCtx), extending the paper's opportunistic batching
// idea one layer up: a contiguous run of pipelined SETs reaches the
// engine as a single WriteBatch, and a run of GETs as one multiget.
//
// This file implements the wire protocol itself: a command reader
// (multibulk "*N\r\n$len\r\n..." arrays and inline "SET k v\r\n"
// commands), a reply writer, and a reply reader used by clients
// (netbench, tests). The reader is allocation-conscious: one flat buffer
// holds all argument bytes of a command and the args slice is reused
// across calls when the caller permits.
package server

import (
	"bufio"
	"fmt"
	"io"
)

// Protocol limits. Oversized frames fail with a ProtocolError instead of
// unbounded allocation, mirroring Redis' proto-max-bulk-len defence.
const (
	// MaxInlineLength bounds one inline command line.
	MaxInlineLength = 64 << 10
	// MaxBulkLength bounds one bulk-string argument.
	MaxBulkLength = 64 << 20
	// MaxCommandArgs bounds the element count of a multibulk command.
	MaxCommandArgs = 128 << 10
	// maxReplyDepth bounds nested arrays when parsing replies.
	maxReplyDepth = 16
)

// ProtocolError is a malformed-frame error; the server reports it to the
// client as "-ERR Protocol error: ..." and closes the connection.
type ProtocolError string

func (e ProtocolError) Error() string { return string(e) }

func protoErrf(format string, args ...any) ProtocolError {
	return ProtocolError(fmt.Sprintf(format, args...))
}

// Reader parses RESP frames from a stream.
type Reader struct {
	br *bufio.Reader
	// line is the scratch buffer for header lines and inline commands.
	line []byte
}

// NewReader wraps r in a RESP reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 32<<10)}
}

// Buffered reports the bytes already received but not yet parsed — the
// signal the server uses to keep draining a client's pipeline before
// flushing replies.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// readLine reads one CRLF-terminated line (a lone LF is tolerated for
// inline/telnet use) into the scratch buffer, excluding the terminator.
func (r *Reader) readLine(limit int) ([]byte, error) {
	r.line = r.line[:0]
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if b == '\n' {
			line := r.line
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return line, nil
		}
		if len(r.line) >= limit {
			return nil, protoErrf("too big inline request or header line")
		}
		r.line = append(r.line, b)
	}
}

// parseInt parses a decimal integer (with optional leading '-') without
// allocating. It rejects empty input, junk and overflow.
func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, protoErrf("invalid integer")
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, protoErrf("invalid integer")
		}
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, protoErrf("invalid integer")
		}
		d := int64(c - '0')
		if n > (1<<63-1-d)/10 {
			return 0, protoErrf("integer overflow")
		}
		n = n*10 + d
	}
	if neg {
		n = -n
	}
	return n, nil
}

// readBulkBody reads n payload bytes plus the trailing CRLF into dst
// (grown as needed) and returns the payload slice.
func (r *Reader) readBulkBody(dst []byte, n int) ([]byte, error) {
	need := n + 2
	if cap(dst) < len(dst)+need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	body := dst[len(dst) : len(dst)+need]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return nil, err
	}
	if body[n] != '\r' || body[n+1] != '\n' {
		return nil, protoErrf("bulk string not terminated by CRLF")
	}
	return dst[:len(dst)+n], nil
}

// ReadCommand reads one client command: either a multibulk array of bulk
// strings or an inline (space-separated) line. Empty frames (bare
// newlines, "*0") are skipped, like Redis. The returned argument slices
// are freshly allocated and owned by the caller.
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		first, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if first != '*' {
			if err := r.br.UnreadByte(); err != nil {
				return nil, err
			}
			args, err := r.readInline()
			if err != nil {
				return nil, err
			}
			if len(args) == 0 {
				continue // empty line: ignore, per inline protocol
			}
			return args, nil
		}
		header, err := r.readLine(MaxInlineLength)
		if err != nil {
			return nil, err
		}
		n, err := parseInt(header)
		if err != nil {
			return nil, err
		}
		if n < 0 || n > MaxCommandArgs {
			return nil, protoErrf("invalid multibulk length %d", n)
		}
		if n == 0 {
			continue
		}
		args := make([][]byte, 0, n)
		// One contiguous buffer holds every argument's bytes; args
		// subslice it. Bounds recorded first, then re-sliced, because
		// the buffer may be reallocated while growing.
		var buf []byte
		bounds := make([][2]int, 0, n)
		for i := int64(0); i < n; i++ {
			prefix, err := r.br.ReadByte()
			if err != nil {
				return nil, err
			}
			if prefix != '$' {
				return nil, protoErrf("expected '$', got %q", prefix)
			}
			header, err := r.readLine(MaxInlineLength)
			if err != nil {
				return nil, err
			}
			sz, err := parseInt(header)
			if err != nil {
				return nil, err
			}
			if sz < 0 || sz > MaxBulkLength {
				return nil, protoErrf("invalid bulk length %d", sz)
			}
			start := len(buf)
			buf, err = r.readBulkBody(buf, int(sz))
			if err != nil {
				return nil, err
			}
			bounds = append(bounds, [2]int{start, len(buf)})
		}
		for _, b := range bounds {
			args = append(args, buf[b[0]:b[1]:b[1]])
		}
		return args, nil
	}
}

// readInline splits one inline command line on spaces/tabs. No quoting —
// inline is a telnet convenience, not the bulk path.
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine(MaxInlineLength)
	if err != nil {
		return nil, err
	}
	var args [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			args = append(args, append([]byte(nil), line[start:i]...))
		}
	}
	return args, nil
}

// ---------------------------------------------------------------------------
// Reply parsing (client side: netbench, tests)
// ---------------------------------------------------------------------------

// Reply is one parsed RESP reply.
type Reply struct {
	// Kind is the RESP type byte: '+' simple string, '-' error,
	// ':' integer, '$' bulk string, '*' array.
	Kind byte
	// Str holds simple-string, error and bulk payloads.
	Str []byte
	// Int holds the integer payload.
	Int int64
	// Nil marks a null bulk ($-1) or null array (*-1).
	Nil bool
	// Elems holds array elements.
	Elems []Reply
}

// IsError reports whether the reply is an error reply.
func (rp Reply) IsError() bool { return rp.Kind == '-' }

// String renders the reply for logs and test failures.
func (rp Reply) String() string {
	switch rp.Kind {
	case '+', '-':
		return string(rp.Str)
	case ':':
		return fmt.Sprintf("%d", rp.Int)
	case '$':
		if rp.Nil {
			return "(nil)"
		}
		return string(rp.Str)
	case '*':
		if rp.Nil {
			return "(nil array)"
		}
		return fmt.Sprintf("array(%d)", len(rp.Elems))
	}
	return "(unknown)"
}

// ReadReply parses one reply frame.
func (r *Reader) ReadReply() (Reply, error) {
	return r.readReplyDepth(0)
}

func (r *Reader) readReplyDepth(depth int) (Reply, error) {
	if depth > maxReplyDepth {
		return Reply{}, protoErrf("reply nesting too deep")
	}
	kind, err := r.br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	line, err := r.readLine(MaxInlineLength)
	if err != nil {
		return Reply{}, err
	}
	switch kind {
	case '+', '-':
		return Reply{Kind: kind, Str: append([]byte(nil), line...)}, nil
	case ':':
		n, err := parseInt(line)
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: kind, Int: n}, nil
	case '$':
		n, err := parseInt(line)
		if err != nil {
			return Reply{}, err
		}
		if n == -1 {
			return Reply{Kind: kind, Nil: true}, nil
		}
		if n < 0 || n > MaxBulkLength {
			return Reply{}, protoErrf("invalid bulk length %d", n)
		}
		body, err := r.readBulkBody(nil, int(n))
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: kind, Str: body}, nil
	case '*':
		n, err := parseInt(line)
		if err != nil {
			return Reply{}, err
		}
		if n == -1 {
			return Reply{Kind: kind, Nil: true}, nil
		}
		if n < 0 || n > MaxCommandArgs {
			return Reply{}, protoErrf("invalid array length %d", n)
		}
		elems := make([]Reply, 0, min(int(n), 1024))
		for i := int64(0); i < n; i++ {
			e, err := r.readReplyDepth(depth + 1)
			if err != nil {
				return Reply{}, err
			}
			elems = append(elems, e)
		}
		return Reply{Kind: kind, Elems: elems}, nil
	default:
		return Reply{}, protoErrf("unknown reply type %q", kind)
	}
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

// Writer emits RESP frames. Errors are sticky: the first write error is
// retained and every later call is a no-op, so command handlers can write
// unconditionally and check once at Flush.
type Writer struct {
	bw  *bufio.Writer
	err error
	num [24]byte // scratch for integer formatting
}

// NewWriter wraps w in a RESP writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 16<<10)}
}

// Flush pushes buffered frames to the connection and reports the first
// error encountered by any write since the last Flush.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

func (w *Writer) writeByte(b byte) {
	if w.err == nil {
		w.err = w.bw.WriteByte(b)
	}
}

func (w *Writer) write(p []byte) {
	if w.err == nil {
		_, w.err = w.bw.Write(p)
	}
}

func (w *Writer) writeString(s string) {
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
}

func (w *Writer) crlf() { w.writeString("\r\n") }

func (w *Writer) writeInt(n int64) {
	neg := n < 0
	u := uint64(n)
	if neg {
		u = uint64(-n)
	}
	i := len(w.num)
	for {
		i--
		w.num[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	if neg {
		i--
		w.num[i] = '-'
	}
	w.write(w.num[i:])
}

// WriteSimple emits "+s\r\n".
func (w *Writer) WriteSimple(s string) {
	w.writeByte('+')
	w.writeString(s)
	w.crlf()
}

// WriteError emits "-msg\r\n". msg should start with an error code word
// (ERR, LOADSHED, TIMEOUT, ...), Redis style.
func (w *Writer) WriteError(msg string) {
	w.writeByte('-')
	w.writeString(msg)
	w.crlf()
}

// WriteInt emits ":n\r\n".
func (w *Writer) WriteInt(n int64) {
	w.writeByte(':')
	w.writeInt(n)
	w.crlf()
}

// WriteBulk emits a bulk string; nil emits the RESP2 null bulk "$-1\r\n".
func (w *Writer) WriteBulk(b []byte) {
	if b == nil {
		w.writeString("$-1\r\n")
		return
	}
	w.writeByte('$')
	w.writeInt(int64(len(b)))
	w.crlf()
	w.write(b)
	w.crlf()
}

// WriteBulkString emits a non-nil bulk string from a string.
func (w *Writer) WriteBulkString(s string) {
	w.writeByte('$')
	w.writeInt(int64(len(s)))
	w.crlf()
	w.writeString(s)
	w.crlf()
}

// WriteArrayHeader emits "*n\r\n"; the caller then writes n elements.
func (w *Writer) WriteArrayHeader(n int) {
	w.writeByte('*')
	w.writeInt(int64(n))
	w.crlf()
}

// WriteCommand emits a command as a multibulk array — the client side of
// ReadCommand, used by netbench and the tests.
func (w *Writer) WriteCommand(args ...[]byte) {
	w.WriteArrayHeader(len(args))
	for _, a := range args {
		w.writeByte('$')
		w.writeInt(int64(len(a)))
		w.crlf()
		w.write(a)
		w.crlf()
	}
}
