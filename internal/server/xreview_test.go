package server

import (
	"testing"
)

func TestXEmptyValueRoundTrip(t *testing.T) {
	ts := startTestServer(t, 2, nil, nil, Config{})
	c := dialTest(t, ts)
	r1 := c.do(t, "SET", "k", "")
	if r1.IsError() {
		t.Fatalf("SET: %s", r1)
	}
	r2 := c.do(t, "GET", "k")
	t.Logf("GET reply: kind=%c nil=%v str=%q", r2.Kind, r2.Nil, r2.Str)
	if r2.Nil {
		t.Fatalf("empty value read back as null bulk (reads as key-not-found)")
	}
}

func TestXEmptyValueViaPipelinedRun(t *testing.T) {
	ts := startTestServer(t, 2, nil, nil, Config{})
	c := dialTest(t, ts)
	reps := c.pipeline(t, []string{"SET", "a", ""}, []string{"SET", "b", "x"})
	for _, r := range reps {
		if r.IsError() {
			t.Fatalf("SET: %s", r)
		}
	}
	reps = c.pipeline(t, []string{"GET", "a"}, []string{"GET", "b"})
	t.Logf("GET a: nil=%v str=%q; GET b: nil=%v str=%q", reps[0].Nil, reps[0].Str, reps[1].Nil, reps[1].Str)
	if reps[0].Nil {
		t.Fatalf("empty value via multiget run read back as null bulk")
	}
}
