package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func readAllCommands(t *testing.T, in string) ([][][]byte, error) {
	t.Helper()
	r := NewReader(strings.NewReader(in))
	var out [][][]byte
	for {
		cmd, err := r.ReadCommand()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, cmd)
	}
}

func TestReadCommandMultibulk(t *testing.T) {
	cmds, err := readAllCommands(t, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n*1\r\n$4\r\nPING\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 {
		t.Fatalf("got %d commands, want 2", len(cmds))
	}
	want := [][]string{{"SET", "k", "hello"}, {"PING"}}
	for i, cmd := range cmds {
		if len(cmd) != len(want[i]) {
			t.Fatalf("cmd %d: %d args, want %d", i, len(cmd), len(want[i]))
		}
		for j, a := range cmd {
			if string(a) != want[i][j] {
				t.Fatalf("cmd %d arg %d = %q, want %q", i, j, a, want[i][j])
			}
		}
	}
}

func TestReadCommandInline(t *testing.T) {
	cmds, err := readAllCommands(t, "PING\r\nSET  key   value\r\n\r\nGET key\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("got %d commands, want 3 (empty line skipped)", len(cmds))
	}
	if string(cmds[1][0]) != "SET" || string(cmds[1][1]) != "key" || string(cmds[1][2]) != "value" {
		t.Fatalf("inline split wrong: %q", cmds[1])
	}
	if string(cmds[2][1]) != "key" {
		t.Fatalf("LF-only line not handled: %q", cmds[2])
	}
}

func TestReadCommandEmptyArraySkipped(t *testing.T) {
	cmds, err := readAllCommands(t, "*0\r\n*1\r\n$4\r\nPING\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 || string(cmds[0][0]) != "PING" {
		t.Fatalf("empty array not skipped: %v", cmds)
	}
}

func TestReadCommandBinarySafe(t *testing.T) {
	payload := []byte("a\r\nb\x00c")
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteCommand([]byte("SET"), []byte("k"), payload)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cmds, err := readAllCommands(t, buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cmds[0][2], payload) {
		t.Fatalf("binary payload corrupted: %q", cmds[0][2])
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	cases := []string{
		"*2\r\n$3\r\nGET\r\n:5\r\n",     // non-bulk element
		"*-1\r\n",                       // negative multibulk in a command
		"*1\r\n$-1\r\n",                 // null bulk in a command
		"*1\r\n$3\r\nab\r\n\r\n",        // length mismatch
		"*1\r\n$999999999999999999999\r\n", // overflow
		"*x\r\n",                        // junk count
	}
	for _, in := range cases {
		_, err := readAllCommands(t, in)
		var perr ProtocolError
		if !errors.As(err, &perr) {
			t.Errorf("input %q: got err %v, want ProtocolError", in, err)
		}
	}
}

func TestReadCommandTruncatedIsIOError(t *testing.T) {
	_, err := readAllCommands(t, "*2\r\n$3\r\nGET\r\n$5\r\nab")
	var perr ProtocolError
	if err == nil || errors.As(err, &perr) {
		t.Fatalf("truncated input: got %v, want io error", err)
	}
}

func TestWriterFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSimple("OK")
	w.WriteError("ERR boom")
	w.WriteInt(-42)
	w.WriteBulk(nil)
	w.WriteBulk([]byte("hi"))
	w.WriteBulkString("yo")
	w.WriteArrayHeader(2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR boom\r\n:-42\r\n$-1\r\n$2\r\nhi\r\n$2\r\nyo\r\n*2\r\n"
	if buf.String() != want {
		t.Fatalf("frames = %q, want %q", buf.String(), want)
	}
}

func TestReadReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSimple("PONG")
	w.WriteError("LOADSHED shard 3")
	w.WriteInt(7)
	w.WriteBulk([]byte("val"))
	w.WriteBulk(nil)
	w.WriteArrayHeader(2)
	w.WriteBulk([]byte("a"))
	w.WriteInt(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	rep, _ := r.ReadReply()
	if rep.Kind != '+' || string(rep.Str) != "PONG" {
		t.Fatalf("simple: %v", rep)
	}
	rep, _ = r.ReadReply()
	if !rep.IsError() || !strings.HasPrefix(string(rep.Str), "LOADSHED") {
		t.Fatalf("error: %v", rep)
	}
	rep, _ = r.ReadReply()
	if rep.Kind != ':' || rep.Int != 7 {
		t.Fatalf("int: %v", rep)
	}
	rep, _ = r.ReadReply()
	if rep.Kind != '$' || string(rep.Str) != "val" {
		t.Fatalf("bulk: %v", rep)
	}
	rep, _ = r.ReadReply()
	if !rep.Nil {
		t.Fatalf("null bulk: %v", rep)
	}
	rep, err := r.ReadReply()
	if err != nil || rep.Kind != '*' || len(rep.Elems) != 2 || rep.Elems[1].Int != 1 {
		t.Fatalf("array: %v %v", rep, err)
	}
}

func TestParseInt(t *testing.T) {
	good := map[string]int64{"0": 0, "123": 123, "-7": -7, "9223372036854775807": 1<<63 - 1}
	for in, want := range good {
		n, err := parseInt([]byte(in))
		if err != nil || n != want {
			t.Errorf("parseInt(%q) = %d, %v; want %d", in, n, err, want)
		}
	}
	for _, in := range []string{"", "-", "1a", "99999999999999999999", "+3"} {
		if _, err := parseInt([]byte(in)); err == nil {
			t.Errorf("parseInt(%q): expected error", in)
		}
	}
}
