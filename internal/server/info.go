package server

import (
	"fmt"
	"strings"
	"time"

	"p2kvs/internal/reshard"
)

// infoText renders the INFO reply: redis-style "key:value" lines in
// sections. The store section is the flattened aggregate of
// Store.StatsSnapshot — the same numbers /metrics serves as JSON.
func (s *Server) infoText() string {
	var b strings.Builder
	st := s.store()
	snap := st.StatsSnapshot()

	fmt.Fprintf(&b, "# Server\r\n")
	fmt.Fprintf(&b, "uptime_seconds:%d\r\n", int64(time.Since(s.start).Seconds()))
	if s.lis != nil {
		fmt.Fprintf(&b, "tcp_addr:%s\r\n", s.lis.Addr())
	}
	fmt.Fprintf(&b, "workers:%d\r\n", snap.Workers)

	fmt.Fprintf(&b, "# Clients\r\n")
	fmt.Fprintf(&b, "connected_clients:%d\r\n", s.stats.active.Load())
	fmt.Fprintf(&b, "total_connections_received:%d\r\n", s.stats.accepted.Load())
	fmt.Fprintf(&b, "maxclients:%d\r\n", s.cfg.MaxConns)

	fmt.Fprintf(&b, "# Stats\r\n")
	fmt.Fprintf(&b, "total_commands_processed:%d\r\n", s.stats.commands.Load())
	fmt.Fprintf(&b, "pipelines_processed:%d\r\n", s.stats.pipelines.Load())
	fmt.Fprintf(&b, "coalesced_set_ops:%d\r\n", s.stats.coalescedSets.Load())
	fmt.Fprintf(&b, "coalesced_get_ops:%d\r\n", s.stats.coalescedGets.Load())
	fmt.Fprintf(&b, "loadshed_replies:%d\r\n", s.stats.loadshed.Load())
	fmt.Fprintf(&b, "timeout_replies:%d\r\n", s.stats.timeouts.Load())
	fmt.Fprintf(&b, "unknown_commands:%d\r\n", s.stats.unknown.Load())
	fmt.Fprintf(&b, "protocol_errors:%d\r\n", s.stats.protoErrors.Load())

	fmt.Fprintf(&b, "# Commandstats\r\n")
	for _, name := range latCommands {
		h := s.stats.lat[name]
		sum := h.Summary()
		if sum.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "cmdstat_%s:calls=%d,usec_mean=%.1f,usec_p50=%.1f,usec_p95=%.1f,usec_p99=%.1f,usec_max=%.1f\r\n",
			name, sum.Count, sum.MeanUs, sum.P50Us, sum.P95Us, sum.P99Us, sum.MaxUs)
	}

	fmt.Fprintf(&b, "# Store\r\n")
	agg := snap.Aggregate
	fmt.Fprintf(&b, "store_ops:%d\r\n", agg.Ops)
	fmt.Fprintf(&b, "store_batches:%d\r\n", agg.Batches)
	fmt.Fprintf(&b, "store_batched_ops:%d\r\n", agg.BatchedOps)
	fmt.Fprintf(&b, "store_batch_write_ops:%d\r\n", agg.BatchWriteOps)
	fmt.Fprintf(&b, "store_multiget_ops:%d\r\n", agg.MultiGetOps)
	fmt.Fprintf(&b, "store_queue_wait_us:%d\r\n", agg.QueueWaitUs)
	fmt.Fprintf(&b, "store_rejected:%d\r\n", agg.Rejected)
	fmt.Fprintf(&b, "store_expired:%d\r\n", agg.Expired)
	fmt.Fprintf(&b, "store_shed:%d\r\n", agg.Shed)
	fmt.Fprintf(&b, "store_queue_high_water:%d\r\n", agg.QueueHighWater)
	fmt.Fprintf(&b, "store_health:%s\r\n", agg.Health)
	fmt.Fprintf(&b, "store_compactions:%d\r\n", agg.Compactions)
	fmt.Fprintf(&b, "store_subcompactions:%d\r\n", agg.Subcompactions)
	fmt.Fprintf(&b, "store_concurrent_compactions_hw:%d\r\n", agg.ConcurrentCompactionsHW)
	fmt.Fprintf(&b, "store_compaction_stall_us:%d\r\n", agg.CompactionStallUs)
	fmt.Fprintf(&b, "store_compaction_slowdown_us:%d\r\n", agg.CompactionSlowdownUs)
	fmt.Fprintf(&b, "store_compaction_slowdowns:%d\r\n", agg.CompactionSlowdowns)

	fmt.Fprintf(&b, "# Cache\r\n")
	fmt.Fprintf(&b, "cache_enabled:%d\r\n", boolInt(snap.CacheEnabled))
	fmt.Fprintf(&b, "cache_hits:%d\r\n", snap.CacheHits)
	fmt.Fprintf(&b, "cache_neg_hits:%d\r\n", snap.CacheNegHits)
	fmt.Fprintf(&b, "cache_misses:%d\r\n", snap.CacheMisses)
	fmt.Fprintf(&b, "cache_fills:%d\r\n", snap.CacheFills)
	fmt.Fprintf(&b, "cache_evictions:%d\r\n", snap.CacheEvictions)
	fmt.Fprintf(&b, "cache_invalidations:%d\r\n", snap.CacheInvalidations)
	fmt.Fprintf(&b, "cache_bytes:%d\r\n", snap.CacheBytes)
	fmt.Fprintf(&b, "cache_entries:%d\r\n", snap.CacheEntries)

	fmt.Fprintf(&b, "# Robustness\r\n")
	fmt.Fprintf(&b, "store_degraded:%d\r\n", boolInt(agg.Health == "read-only"))
	fmt.Fprintf(&b, "store_disk_full:%d\r\n", boolInt(agg.DiskFull))
	fmt.Fprintf(&b, "store_disk_full_events:%d\r\n", agg.DiskFullEvents)
	fmt.Fprintf(&b, "store_auto_resumes:%d\r\n", agg.AutoResumes)
	fmt.Fprintf(&b, "store_corruption_events:%d\r\n", agg.CorruptionEvents)
	fmt.Fprintf(&b, "store_quarantined_files:%d\r\n", agg.QuarantinedFiles)
	fmt.Fprintf(&b, "store_repaired_files:%d\r\n", agg.RepairedFiles)
	if agg.LastCorruption != "" {
		fmt.Fprintf(&b, "store_last_corruption:%s\r\n", strings.ReplaceAll(agg.LastCorruption, "\r\n", " "))
	}
	ss := st.ScrubStatus()
	fmt.Fprintf(&b, "scrub_passes:%d\r\n", ss.Passes)
	fmt.Fprintf(&b, "scrub_last_files_scanned:%d\r\n", ss.Result.FilesScanned)
	fmt.Fprintf(&b, "scrub_last_bytes_scanned:%d\r\n", ss.Result.BytesScanned)
	fmt.Fprintf(&b, "scrub_last_corruptions_found:%d\r\n", ss.Result.CorruptionsFound)
	fmt.Fprintf(&b, "scrub_last_files_repaired:%d\r\n", ss.Result.FilesRepaired)
	fmt.Fprintf(&b, "scrub_last_finished_unix:%d\r\n", ss.FinishedUnix)
	fmt.Fprintf(&b, "corruption_replies:%d\r\n", s.stats.corruptionReplies.Load())
	fmt.Fprintf(&b, "conn_panics_recovered:%d\r\n", s.stats.panics.Load())
	fmt.Fprintf(&b, "conn_idle_closed:%d\r\n", s.stats.idleClosed.Load())

	fmt.Fprintf(&b, "# Persistence\r\n")
	fmt.Fprintf(&b, "store_checkpoints:%d\r\n", snap.Checkpoints)
	fmt.Fprintf(&b, "store_checkpoint_barrier_ns:%d\r\n", snap.CheckpointBarrierNs)
	fmt.Fprintf(&b, "store_last_checkpoint_unix:%d\r\n", snap.LastCheckpointUnix)
	fmt.Fprintf(&b, "store_checkpoint_in_progress:%d\r\n", boolInt(s.saving.Load()))
	fmt.Fprintf(&b, "store_checkpoint_files_linked:%d\r\n", agg.CheckpointFilesLinked)
	fmt.Fprintf(&b, "store_checkpoint_files_copied:%d\r\n", agg.CheckpointFilesCopied)
	fmt.Fprintf(&b, "store_checkpoint_files_reused:%d\r\n", agg.CheckpointFilesReused)
	fmt.Fprintf(&b, "store_checkpoint_bytes_copied:%d\r\n", agg.CheckpointBytesCopied)
	if err := s.lastSaveError(); err != nil {
		fmt.Fprintf(&b, "store_last_checkpoint_error:%s\r\n", strings.ReplaceAll(err.Error(), "\r\n", " "))
	}

	fmt.Fprintf(&b, "# Reshard\r\n")
	fmt.Fprintf(&b, "reshard_in_progress:%d\r\n", boolInt(s.resharding.Load()))
	writeReshardStats(&b, snap.Reshard)
	if err := s.lastReshardError(); err != nil {
		fmt.Fprintf(&b, "reshard_last_run_error:%s\r\n", strings.ReplaceAll(err.Error(), "\r\n", " "))
	}

	s.repl.infoSection(&b, st)
	return b.String()
}

// writeReshardStats renders the resharding counters as INFO-style lines;
// shared by the # Reshard section and the RESHARD STATUS reply.
func writeReshardStats(b *strings.Builder, st reshard.Stats) {
	fmt.Fprintf(b, "reshard_state:%s\r\n", st.State)
	fmt.Fprintf(b, "reshard_epoch:%d\r\n", st.Epoch)
	fmt.Fprintf(b, "reshard_from:%d\r\n", st.From)
	fmt.Fprintf(b, "reshard_to:%d\r\n", st.To)
	fmt.Fprintf(b, "reshard_completed:%d\r\n", st.Completed)
	fmt.Fprintf(b, "reshard_aborted:%d\r\n", st.Aborted)
	fmt.Fprintf(b, "reshard_moved_keys:%d\r\n", st.MovedKeys)
	fmt.Fprintf(b, "reshard_moved_bytes:%d\r\n", st.MovedBytes)
	fmt.Fprintf(b, "reshard_double_writes:%d\r\n", st.DoubleWrites)
	fmt.Fprintf(b, "reshard_skipped_stale:%d\r\n", st.SkippedStale)
	fmt.Fprintf(b, "reshard_barrier_ns:%d\r\n", st.BarrierNs)
	fmt.Fprintf(b, "reshard_cutover_retries:%d\r\n", st.CutoverRetries)
	if st.LastErr != "" {
		fmt.Fprintf(b, "reshard_last_err:%s\r\n", strings.ReplaceAll(st.LastErr, "\r\n", " "))
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
