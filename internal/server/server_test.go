package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2kvs/internal/core"
	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// stubEngine is an in-memory engine with batch-path counters and a
// gateable write path, used to prove server-level behaviour (pipeline
// coalescing, loadshed, timeout, drain) deterministically.
type stubEngine struct {
	mu   sync.Mutex
	data map[string]string

	batchWrites atomic.Int64 // Write (WriteBatch) calls
	batchOps    atomic.Int64 // ops inside Write calls
	multiGets   atomic.Int64 // MultiGet calls
	multiKeys   atomic.Int64 // keys inside MultiGet calls

	// gate, when non-nil, blocks every write until closed.
	gate chan struct{}
	// entered counts write calls that began (possibly parked on gate).
	entered atomic.Int64
}

func newStubEngine(gate chan struct{}) *stubEngine {
	return &stubEngine{data: make(map[string]string), gate: gate}
}

func (e *stubEngine) waitGate() {
	if e.gate != nil {
		<-e.gate
	}
}

func (e *stubEngine) Put(key, value []byte) error {
	e.entered.Add(1)
	e.waitGate()
	e.mu.Lock()
	e.data[string(key)] = string(value)
	e.mu.Unlock()
	return nil
}

func (e *stubEngine) Get(key []byte) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.data[string(key)]
	if !ok {
		return nil, kv.ErrNotFound
	}
	return []byte(v), nil
}

func (e *stubEngine) Delete(key []byte) error {
	e.entered.Add(1)
	e.waitGate()
	e.mu.Lock()
	delete(e.data, string(key))
	e.mu.Unlock()
	return nil
}

func (e *stubEngine) Write(b *kv.Batch) error {
	e.entered.Add(1)
	e.waitGate()
	e.batchWrites.Add(1)
	e.batchOps.Add(int64(b.Len()))
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, op := range b.Ops() {
		if op.Kind == kv.OpDelete {
			delete(e.data, string(op.Key))
		} else {
			e.data[string(op.Key)] = string(op.Value)
		}
	}
	return nil
}

func (e *stubEngine) MultiGet(keys [][]byte) ([][]byte, error) {
	e.multiGets.Add(1)
	e.multiKeys.Add(int64(len(keys)))
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]byte, len(keys))
	for i, k := range keys {
		if v, ok := e.data[string(k)]; ok {
			out[i] = []byte(v)
		}
	}
	return out, nil
}

func (e *stubEngine) NewIterator() (kv.Iterator, error) {
	e.mu.Lock()
	keys := make([]string, 0, len(e.data))
	for k := range e.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]string, len(keys))
	for i, k := range keys {
		vals[i] = e.data[k]
	}
	e.mu.Unlock()
	return &stubIter{keys: keys, vals: vals, pos: -1}, nil
}

func (e *stubEngine) Flush() error { return nil }
func (e *stubEngine) Close() error { return nil }

type stubIter struct {
	keys []string
	vals []string
	pos  int
}

func (it *stubIter) Valid() bool { return it.pos >= 0 && it.pos < len(it.keys) }
func (it *stubIter) SeekToFirst() { it.pos = 0 }
func (it *stubIter) Seek(target []byte) {
	it.pos = sort.SearchStrings(it.keys, string(target))
}
func (it *stubIter) Next()         { it.pos++ }
func (it *stubIter) Key() []byte   { return []byte(it.keys[it.pos]) }
func (it *stubIter) Value() []byte { return []byte(it.vals[it.pos]) }
func (it *stubIter) Error() error  { return nil }
func (it *stubIter) Close() error  { return nil }

// testServer wires a Server over stub engines on an ephemeral port.
type testServer struct {
	srv      *Server
	store    *core.Store
	engines  []*stubEngine
	addr     string        // listen address, valid before Serve runs
	done     chan struct{} // closed when Serve returns
	serveErr error         // valid after done is closed
}

func startTestServer(t *testing.T, workers int, gate chan struct{}, tweak func(*core.Options), cfg Config) *testServer {
	t.Helper()
	engines := make([]*stubEngine, workers)
	copts := core.DefaultOptions(func(id int, _ func(uint64) bool) (kv.Engine, error) {
		engines[id] = newStubEngine(gate)
		return engines[id], nil
	})
	copts.Workers = workers
	copts.TxnFS = vfs.NewMem()
	copts.TxnDir = "txn"
	if tweak != nil {
		tweak(&copts)
	}
	store, err := core.Open(copts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	srv := New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &testServer{srv: srv, store: store, engines: engines, addr: lis.Addr().String(), done: make(chan struct{})}
	go func() {
		ts.serveErr = srv.Serve(lis)
		close(ts.done)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		select {
		case <-ts.done:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return ts
}

// client is a minimal RESP test client.
type client struct {
	nc net.Conn
	rd *Reader
	wr *Writer
}

func dialTest(t *testing.T, ts *testServer) *client {
	t.Helper()
	nc, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &client{nc: nc, rd: NewReader(nc), wr: NewWriter(nc)}
}

// pipeline writes all commands in one flush, then reads one reply each.
func (c *client) pipeline(t *testing.T, cmds ...[]string) []Reply {
	t.Helper()
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	for _, cmd := range cmds {
		args := make([][]byte, len(cmd))
		for i, a := range cmd {
			args[i] = []byte(a)
		}
		bw.WriteCommand(args...)
	}
	bw.Flush()
	// One Write syscall so the server sees the whole pipeline at once.
	if _, err := c.nc.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	replies := make([]Reply, 0, len(cmds))
	for range cmds {
		rep, err := c.rd.ReadReply()
		if err != nil {
			t.Fatalf("reading reply %d/%d: %v", len(replies)+1, len(cmds), err)
		}
		replies = append(replies, rep)
	}
	return replies
}

func (c *client) do(t *testing.T, args ...string) Reply {
	t.Helper()
	return c.pipeline(t, args)[0]
}

// send writes one command without waiting for its reply — used to park
// requests behind a gated engine.
func (c *client) send(t *testing.T, args ...string) {
	t.Helper()
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	c.wr.WriteCommand(bs...)
	if err := c.wr.Flush(); err != nil {
		t.Fatal(err)
	}
}

// tryRead reads one reply bounded by a deadline; ok is false on timeout.
func (c *client) tryRead(t *testing.T, d time.Duration) (Reply, bool) {
	t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(d))
	defer c.nc.SetReadDeadline(time.Time{})
	rep, err := c.rd.ReadReply()
	if err != nil {
		if ne, isNet := err.(net.Error); isNet && ne.Timeout() {
			return Reply{}, false
		}
		t.Fatal(err)
	}
	return rep, true
}

func sumBatchStats(store *core.Store) (batchWriteOps, multiGetOps int64) {
	for _, ws := range store.Stats() {
		batchWriteOps += ws.BatchWriteOps
		multiGetOps += ws.MultiGetOps
	}
	return
}

func TestPipelinedSetCoalescing(t *testing.T) {
	ts := startTestServer(t, 4, nil, nil, Config{})
	c := dialTest(t, ts)

	var cmds [][]string
	for i := 0; i < 16; i++ {
		cmds = append(cmds, []string{"SET", fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i)})
	}
	for i, rep := range c.pipeline(t, cmds...) {
		if rep.Kind != '+' || string(rep.Str) != "OK" {
			t.Fatalf("SET %d: %v", i, rep)
		}
	}
	// The 16 SETs must have reached the engines as WriteBatch calls, not
	// 16 single puts: every op travels inside a multi-op batch.
	var engineBatchOps, engineBatchWrites int64
	for _, e := range ts.engines {
		engineBatchOps += e.batchOps.Load()
		engineBatchWrites += e.batchWrites.Load()
	}
	if engineBatchOps != 16 {
		t.Fatalf("engine batch ops = %d, want 16", engineBatchOps)
	}
	if engineBatchWrites > 4 {
		t.Fatalf("engine WriteBatch calls = %d, want <= one per shard", engineBatchWrites)
	}
	// Every shard holding >= 2 of the 16 keys must report its ops as
	// batch-written; with 4 shards at least 13 ops land in such shards.
	if bw, _ := sumBatchStats(ts.store); bw < 13 {
		t.Fatalf("WorkerStats.BatchWriteOps = %d, want >= 13", bw)
	}
	// And the data is actually there.
	if rep := c.do(t, "GET", "key-07"); string(rep.Str) != "val-07" {
		t.Fatalf("GET after coalesced SET: %v", rep)
	}
}

// TestPipelinedGetCoalescing wedges the single worker behind a gated
// write so a pipeline of GETs piles up contiguously in its queue; when
// the gate opens, OBM must deliver them to the engine as one multiget.
func TestPipelinedGetCoalescing(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	ts := startTestServer(t, 1, gate, nil, Config{})
	// Preload engine-side data directly: the gate only blocks writes.
	e := ts.engines[0]
	e.mu.Lock()
	for i := 0; i < 8; i++ {
		e.data[fmt.Sprintf("g%02d", i)] = fmt.Sprintf("v%02d", i)
	}
	e.mu.Unlock()

	// Wedge the worker inside a write...
	wedge := dialTest(t, ts)
	wedge.send(t, "SET", "wedge", "1")
	waitFor(t, func() bool { return e.entered.Load() >= 1 })

	// ...then pipeline 9 GETs that queue up behind it.
	c := dialTest(t, ts)
	var gets [][]string
	for i := 0; i < 8; i++ {
		gets = append(gets, []string{"GET", fmt.Sprintf("g%02d", i)})
	}
	gets = append(gets, []string{"GET", "missing"})
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	for _, g := range gets {
		bw.WriteCommand([]byte(g[0]), []byte(g[1]))
	}
	bw.Flush()
	if _, err := c.nc.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Wait until all 9 reads are parked in the worker queue, then open
	// the gate: the worker pops the write, then the whole read run.
	waitFor(t, func() bool {
		for _, ws := range ts.store.Stats() {
			if ws.QueueHighWater >= 9 {
				return true
			}
		}
		return false
	})
	close(gate)
	released = true

	for i := 0; i < 8; i++ {
		rep, err := c.rd.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("v%02d", i); string(rep.Str) != want {
			t.Fatalf("GET %d = %v, want %s", i, rep, want)
		}
	}
	rep, err := c.rd.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Nil {
		t.Fatalf("missing key: got %v, want nil bulk", rep)
	}
	if _, mg := sumBatchStats(ts.store); mg != 9 {
		t.Fatalf("WorkerStats.MultiGetOps = %d, want 9", mg)
	}
	if e.multiGets.Load() != 1 || e.multiKeys.Load() != 9 {
		t.Fatalf("engine multiget calls=%d keys=%d, want 1 call with 9 keys",
			e.multiGets.Load(), e.multiKeys.Load())
	}
}

func TestLoadshedReplyUnderAdmitReject(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	ts := startTestServer(t, 1, gate, func(o *core.Options) {
		o.Admission = core.AdmitReject
		o.QueueDepth = 1
	}, Config{})

	// Conn A wedges the worker inside the engine; the queue is empty
	// again once its request is popped.
	a := dialTest(t, ts)
	a.send(t, "SET", "a", "1")
	waitFor(t, func() bool { return ts.engines[0].entered.Load() >= 1 })

	// B and C race for the single queue slot: one parks, the other must
	// bounce with -LOADSHED (the worker is wedged, so the slot cannot
	// free in between).
	b := dialTest(t, ts)
	cc := dialTest(t, ts)
	b.send(t, "SET", "b", "2")
	cc.send(t, "SET", "c", "3")
	waitFor(t, func() bool {
		var rejected int64
		for _, ws := range ts.store.Stats() {
			rejected += ws.Rejected
		}
		return rejected >= 1
	})
	rep, ok := b.tryRead(t, 200*time.Millisecond)
	if !ok {
		rep, ok = cc.tryRead(t, 2*time.Second)
		if !ok {
			t.Fatal("neither B nor C received the rejection reply")
		}
	}
	if !rep.IsError() || !strings.HasPrefix(string(rep.Str), "LOADSHED") {
		t.Fatalf("overloaded SET: got %v, want -LOADSHED", rep)
	}
	if ts.srv.stats.loadshed.Load() == 0 {
		t.Fatal("loadshed counter not incremented")
	}
	close(gate)
	released = true
}

func TestCommandTimeoutReply(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	ts := startTestServer(t, 1, gate, nil, Config{CommandTimeout: 30 * time.Millisecond})
	c := dialTest(t, ts)

	rep := c.do(t, "SET", "k", "v")
	if !rep.IsError() || !strings.HasPrefix(string(rep.Str), "TIMEOUT") {
		t.Fatalf("deadline expiry: got %v, want -TIMEOUT", rep)
	}
	if ts.srv.stats.timeouts.Load() == 0 {
		t.Fatal("timeout counter not incremented")
	}
}

// TestGracefulDrainMidPipeline proves the shutdown contract: a pipeline
// being processed when Shutdown starts gets every reply written and
// flushed before its connection closes — zero dropped in-flight replies.
func TestGracefulDrainMidPipeline(t *testing.T) {
	gate := make(chan struct{})
	ts := startTestServer(t, 2, gate, nil, Config{})
	c := dialTest(t, ts)

	// 6 pipelined SETs coalesce into one WriteCtx wedged on the gate.
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	for i := 0; i < 6; i++ {
		bw.WriteCommand([]byte("SET"), []byte(fmt.Sprintf("d%d", i)), []byte("v"))
	}
	bw.Flush()
	if _, err := c.nc.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		var n int64
		for _, e := range ts.engines {
			n += e.entered.Load()
		}
		return n >= 1
	})

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- ts.srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let the drain begin mid-pipeline
	close(gate)

	for i := 0; i < 6; i++ {
		rep, err := c.rd.ReadReply()
		if err != nil {
			t.Fatalf("reply %d lost during drain: %v", i, err)
		}
		if rep.Kind != '+' || string(rep.Str) != "OK" {
			t.Fatalf("reply %d = %v, want +OK", i, rep)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	select {
	case <-ts.done:
		if ts.serveErr != nil {
			t.Fatalf("Serve returned %v after drain", ts.serveErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// Connection must now be closed.
	c.nc.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c.rd.ReadReply(); err == nil {
		t.Fatal("connection still open after drain")
	}
	// New connections must be refused.
	if nc, err := net.Dial("tcp", ts.addr); err == nil {
		nc.Close()
		t.Fatal("listener still accepting after drain")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
