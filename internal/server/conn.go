package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// conn serves one client connection.
type conn struct {
	srv *Server
	nc  net.Conn
	rd  *Reader
	wr  *Writer

	// closing is set by QUIT / SHUTDOWN to end the session after the
	// current window's replies are flushed.
	closing bool
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{srv: s, nc: nc, rd: NewReader(nc), wr: NewWriter(nc)}
}

// beginDrain unblocks a connection parked in its blocking first read so
// the drain can proceed; a connection mid-window keeps running until its
// replies are flushed.
func (c *conn) beginDrain() {
	c.nc.SetReadDeadline(time.Now())
}

// serve is the connection loop: read one pipeline window (first command
// blocking, then everything already buffered), process it with run
// coalescing, flush all replies, repeat. During a drain the loop exits
// between windows — never between a command and its reply.
func (c *conn) serve() {
	defer c.nc.Close()
	for {
		if c.srv.draining.Load() {
			return
		}
		cmds, rerr := c.readWindow()
		if len(cmds) > 0 {
			c.srv.stats.pipelines.Add(1)
			c.srv.stats.commands.Add(int64(len(cmds)))
			c.processWindow(cmds)
			if c.flush() != nil || c.closing {
				return
			}
		}
		if rerr != nil {
			var perr ProtocolError
			if errors.As(rerr, &perr) {
				c.srv.stats.protoErrors.Add(1)
				c.wr.WriteError("ERR Protocol error: " + perr.Error())
				c.flush()
			}
			// EOF, read-deadline expiry from beginDrain, or a hard
			// network error: nothing more to reply to, close.
			return
		}
	}
}

// readWindow reads the client's current pipeline: one blocking command,
// then every command already sitting in the read buffer, capped at
// MaxPipeline. Returning both commands and an error is valid — the
// complete commands are processed (and answered) before the error closes
// the connection.
func (c *conn) readWindow() ([][][]byte, error) {
	if t := c.srv.cfg.ConnIdleTimeout; t > 0 && !c.srv.draining.Load() {
		c.nc.SetReadDeadline(time.Now().Add(t))
	}
	first, err := c.rd.ReadCommand()
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() && !c.srv.draining.Load() {
			// Idle expiry, not the drain kick from beginDrain.
			c.srv.stats.idleClosed.Add(1)
		}
		return nil, err
	}
	cmds := [][][]byte{first}
	for len(cmds) < c.srv.cfg.MaxPipeline && c.rd.Buffered() > 0 {
		cmd, err := c.rd.ReadCommand()
		if err != nil {
			return cmds, err
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// flush writes out every buffered reply, bounded by cfg.WriteTimeout: a
// client that stops reading is disconnected (the deadline fails the
// flush and serve returns) instead of wedging this goroutine forever.
func (c *conn) flush() error {
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(t))
		defer c.nc.SetWriteDeadline(time.Time{})
	}
	return c.wr.Flush()
}

// cmdName returns the upper-cased command verb.
func cmdName(cmd [][]byte) string {
	return strings.ToUpper(string(cmd[0]))
}

// runEnd extends a coalescible run: the longest stretch of commands from
// i that share the verb name and exact arity.
func runEnd(cmds [][][]byte, i int, name string, arity int) int {
	j := i
	for j < len(cmds) && len(cmds[j]) == arity && cmdName(cmds[j]) == name {
		j++
	}
	return j
}

// processWindow executes one pipeline window in order. Contiguous runs of
// plain SETs collapse into a single WriteCtx batch and runs of GETs into
// one MultiGetCtx — the network-layer extension of the paper's OBM:
// instead of hoping requests pile up in the worker queues, a pipelining
// client hands us the batch boundary explicitly. Replies keep the
// one-reply-per-command contract, in order.
func (c *conn) processWindow(cmds [][][]byte) {
	i := 0
	for i < len(cmds) && !c.closing {
		switch cmdName(cmds[i]) {
		case "SET":
			if j := runEnd(cmds, i, "SET", 3); j-i >= 2 {
				c.execSetRun(cmds[i:j])
				i = j
				continue
			}
		case "GET":
			if j := runEnd(cmds, i, "GET", 2); j-i >= 2 {
				c.execGetRun(cmds[i:j])
				i = j
				continue
			}
		}
		c.execOne(cmds[i])
		i++
	}
}

// cmdCtx builds the per-command (or per-coalesced-run) context from the
// server's CommandTimeout.
func (c *conn) cmdCtx() (context.Context, context.CancelFunc) {
	if t := c.srv.cfg.CommandTimeout; t > 0 {
		return context.WithTimeout(context.Background(), t)
	}
	return context.Background(), func() {}
}

// writeStoreErr maps store errors onto RESP error classes: admission
// control → -LOADSHED (retry after backoff), deadline expiry → -TIMEOUT,
// at-rest corruption → -CORRUPTION (restore from backup / run SCRUB),
// degraded shard → -READONLY (with a distinct "disk full" detail when the
// cause is space exhaustion — that variant self-heals once space frees),
// closed store → -SHUTDOWN.
func (c *conn) writeStoreErr(err error) {
	switch {
	// Checked before ErrOverloaded: under AdmitReject a degraded shard's
	// error is wrapped in ErrOverloaded too, and "disk full, retry later /
	// free space" is the more actionable diagnosis. Matched on the space
	// cause alone so the very first failing write — which carries raw
	// ENOSPC, before the shard has flipped to degraded — gets the same
	// reply as every later one.
	case vfs.IsNoSpace(err):
		c.wr.WriteError("READONLY disk full: " + err.Error())
	// Also before ErrOverloaded/ErrDegraded: a corruption-degraded shard's
	// error matches those classes too, but "this data is damaged" is the
	// diagnosis the client needs — retrying will not help.
	case errors.Is(err, kv.ErrCorruption):
		c.srv.stats.corruptionReplies.Add(1)
		c.wr.WriteError("CORRUPTION " + err.Error())
	case errors.Is(err, kv.ErrOverloaded):
		c.srv.stats.loadshed.Add(1)
		c.wr.WriteError("LOADSHED " + err.Error())
	case errors.Is(err, kv.ErrDeadlineExceeded):
		c.srv.stats.timeouts.Add(1)
		c.wr.WriteError("TIMEOUT " + err.Error())
	case errors.Is(err, kv.ErrDegraded):
		c.wr.WriteError("READONLY " + err.Error())
	case errors.Is(err, kv.ErrClosed):
		c.wr.WriteError("SHUTDOWN " + err.Error())
	default:
		c.wr.WriteError("ERR " + err.Error())
	}
}

// execSetRun commits a coalesced run of pipelined SETs as one WriteCtx
// batch: one worker request (and one engine WriteBatch) per shard touched
// instead of one per command. All commands in the run share one fate —
// the batch either commits or every SET reports the same error.
func (c *conn) execSetRun(run [][][]byte) {
	if c.rejectIfReplica(len(run)) {
		return
	}
	start := time.Now()
	var b kv.Batch
	for _, cmd := range run {
		b.Put(cmd[1], cmd[2])
	}
	ctx, cancel := c.cmdCtx()
	err := c.srv.store().WriteCtx(ctx, &b)
	cancel()
	c.srv.stats.latFor("set").Record(time.Since(start))
	if err == nil {
		c.srv.stats.coalescedSets.Add(int64(len(run)))
	}
	for range run {
		if err != nil {
			c.writeStoreErr(err)
		} else {
			c.wr.WriteSimple("OK")
		}
	}
}

// execGetRun resolves a coalesced run of pipelined GETs through
// MultiGetCtx, whose per-shard legs OBM merges into engine multigets.
func (c *conn) execGetRun(run [][][]byte) {
	start := time.Now()
	keys := make([][]byte, len(run))
	for i, cmd := range run {
		keys[i] = cmd[1]
	}
	ctx, cancel := c.cmdCtx()
	vals, err := c.srv.store().MultiGetCtx(ctx, keys)
	cancel()
	c.srv.stats.latFor("get").Record(time.Since(start))
	if err != nil {
		for range run {
			c.writeStoreErr(err)
		}
		return
	}
	c.srv.stats.coalescedGets.Add(int64(len(run)))
	for _, v := range vals {
		c.wr.WriteBulk(v)
	}
}

// execOne dispatches a single (non-coalesced) command.
func (c *conn) execOne(cmd [][]byte) {
	name := cmdName(cmd)
	start := time.Now()
	switch name {
	case "PING":
		if len(cmd) > 1 {
			c.wr.WriteBulk(cmd[1])
		} else {
			c.wr.WriteSimple("PONG")
		}
	case "ECHO":
		if len(cmd) != 2 {
			c.argErr(name)
		} else {
			c.wr.WriteBulk(cmd[1])
		}
	case "SET":
		c.execSet(cmd)
	case "GET":
		c.execGet(cmd)
	case "DEL":
		c.execDel(cmd)
	case "MGET":
		c.execMGet(cmd)
	case "MSET":
		c.execMSet(cmd)
	case "SCAN":
		c.execScan(cmd)
	case "INFO":
		c.wr.WriteBulkString(c.srv.infoText())
	case "BGSAVE":
		c.execBgsave()
	case "RESHARD":
		c.execReshard(cmd)
	case "SCRUB":
		c.execScrub()
	case "PSYNC":
		c.execPsync(cmd)
	case "REPLICAOF", "SLAVEOF":
		c.execReplicaOf(cmd)
	case "LASTSAVE":
		c.wr.WriteInt(c.srv.store().LastCheckpointUnix())
	case "COMMAND":
		// redis-cli handshake: an empty reply keeps it happy.
		c.wr.WriteArrayHeader(0)
	case "SELECT":
		// Single keyspace; accept and ignore.
		c.wr.WriteSimple("OK")
	case "QUIT":
		c.wr.WriteSimple("OK")
		c.closing = true
	case "SHUTDOWN":
		// Acknowledge, then hand the drain to the process owner
		// listening on ShutdownSignal. The reply is flushed before the
		// connection closes, so the client sees the acknowledgement.
		c.wr.WriteSimple("OK")
		c.closing = true
		c.srv.signalShutdown()
	default:
		c.srv.stats.unknown.Add(1)
		c.wr.WriteError("ERR unknown command '" + string(cmd[0]) + "'")
	}
	c.srv.stats.latFor(strings.ToLower(name)).Record(time.Since(start))
}

// execBgsave starts a background checkpoint into the configured backup
// directory, mirroring Redis BGSAVE semantics: the reply acknowledges the
// start, LASTSAVE (and INFO's store_last_checkpoint_unix) report the
// completion.
func (c *conn) execBgsave() {
	if c.srv.cfg.CheckpointDir == "" {
		c.wr.WriteError("ERR BGSAVE disabled: server started without a checkpoint directory")
		return
	}
	if !c.srv.bgsave() {
		c.wr.WriteError("ERR Background save already in progress")
		return
	}
	c.wr.WriteSimple("Background saving started")
}

// execReshard handles RESHARD <N> (start an online reshard to N workers
// in the background, BGSAVE-style) and RESHARD STATUS (report the
// current or last run's counters). The acknowledgement means the
// reshard started; completion is observable via RESHARD STATUS's
// reshard_completed / reshard_state fields, or INFO's # Reshard section.
func (c *conn) execReshard(cmd [][]byte) {
	if len(cmd) != 2 {
		c.argErr("reshard")
		return
	}
	arg := strings.ToUpper(string(cmd[1]))
	if arg == "STATUS" {
		st := c.srv.store().ReshardStats()
		var b strings.Builder
		fmt.Fprintf(&b, "reshard_in_progress:%d\r\n", boolInt(c.srv.resharding.Load()))
		writeReshardStats(&b, st)
		c.wr.WriteBulkString(b.String())
		return
	}
	n, err := strconv.Atoi(string(cmd[1]))
	if err != nil || n < 1 {
		c.wr.WriteError("ERR RESHARD needs a worker count >= 1 or STATUS")
		return
	}
	store := c.srv.store()
	if !store.Elastic() {
		c.wr.WriteError("ERR RESHARD unsupported: server started without -elastic")
		return
	}
	if n == store.Workers() {
		c.wr.WriteSimple("OK already at " + strconv.Itoa(n) + " workers")
		return
	}
	if c.srv.repl.isReplica() {
		c.wr.WriteError("READONLY replica: RESHARD must go to the primary")
		return
	}
	if !c.srv.reshard(n) {
		c.wr.WriteError("ERR Reshard already in progress")
		return
	}
	c.wr.WriteSimple("Background resharding started")
}

// execScrub runs one synchronous, unthrottled integrity pass over every
// worker engine and reports what it covered — the on-demand counterpart of
// the background scrubber (-scrub_interval). Corruption found is
// quarantined/repaired as a side effect, exactly as if a foreground read
// had hit it; the command itself fails only on infrastructure errors.
func (c *conn) execScrub() {
	ctx, cancel := c.cmdCtx()
	res, err := c.srv.store().Scrub(ctx, nil)
	cancel()
	if err != nil {
		c.writeStoreErr(err)
		return
	}
	c.wr.WriteBulkString(fmt.Sprintf(
		"scrub_files_scanned:%d\r\nscrub_bytes_scanned:%d\r\nscrub_corruptions_found:%d\r\nscrub_files_repaired:%d\r\n",
		res.FilesScanned, res.BytesScanned, res.CorruptionsFound, res.FilesRepaired))
}

// rejectIfReplica enforces replica read-only mode: while the server
// follows a primary, every client write is refused before it reaches
// the store — replicated applies take the Store.ApplyRepl path instead,
// which this guard never sees. Checked ahead of admission control so a
// misdirected writer gets the authoritative "-READONLY replica" rather
// than a retryable -LOADSHED. Returns true (after writing n identical
// error replies, one per command in a coalesced run) if rejected.
func (c *conn) rejectIfReplica(n int) bool {
	if !c.srv.repl.isReplica() {
		return false
	}
	for i := 0; i < n; i++ {
		c.wr.WriteError("READONLY replica: writes must go to the primary")
	}
	return true
}

func (c *conn) argErr(name string) {
	c.wr.WriteError("ERR wrong number of arguments for '" + strings.ToLower(name) + "' command")
}

func (c *conn) execSet(cmd [][]byte) {
	if len(cmd) != 3 {
		// Redis SET options (EX/NX/...) are not supported; reject
		// loudly rather than silently ignoring durability options.
		c.argErr("set")
		return
	}
	if c.rejectIfReplica(1) {
		return
	}
	ctx, cancel := c.cmdCtx()
	err := c.srv.store().PutCtx(ctx, cmd[1], cmd[2])
	cancel()
	if err != nil {
		c.writeStoreErr(err)
		return
	}
	c.wr.WriteSimple("OK")
}

func (c *conn) execGet(cmd [][]byte) {
	if len(cmd) != 2 {
		c.argErr("get")
		return
	}
	ctx, cancel := c.cmdCtx()
	v, err := c.srv.store().GetCtx(ctx, cmd[1])
	cancel()
	switch {
	case err == nil:
		c.wr.WriteBulk(v)
	case errors.Is(err, kv.ErrNotFound):
		c.wr.WriteBulk(nil)
	default:
		c.writeStoreErr(err)
	}
}

// execDel deletes the given keys as one batch. Reply is the number of
// keys submitted (p2KVS deletes are blind — existence is not checked, a
// documented deviation from Redis' deleted-count).
func (c *conn) execDel(cmd [][]byte) {
	if len(cmd) < 2 {
		c.argErr("del")
		return
	}
	if c.rejectIfReplica(1) {
		return
	}
	var b kv.Batch
	for _, k := range cmd[1:] {
		b.Delete(k)
	}
	ctx, cancel := c.cmdCtx()
	err := c.srv.store().WriteCtx(ctx, &b)
	cancel()
	if err != nil {
		c.writeStoreErr(err)
		return
	}
	c.wr.WriteInt(int64(len(cmd) - 1))
}

func (c *conn) execMGet(cmd [][]byte) {
	if len(cmd) < 2 {
		c.argErr("mget")
		return
	}
	ctx, cancel := c.cmdCtx()
	vals, err := c.srv.store().MultiGetCtx(ctx, cmd[1:])
	cancel()
	if err != nil {
		c.writeStoreErr(err)
		return
	}
	c.srv.stats.coalescedGets.Add(int64(len(vals)))
	c.wr.WriteArrayHeader(len(vals))
	for _, v := range vals {
		c.wr.WriteBulk(v)
	}
}

func (c *conn) execMSet(cmd [][]byte) {
	if len(cmd) < 3 || len(cmd)%2 != 1 {
		c.argErr("mset")
		return
	}
	if c.rejectIfReplica(1) {
		return
	}
	var b kv.Batch
	for i := 1; i+1 < len(cmd); i += 2 {
		b.Put(cmd[i], cmd[i+1])
	}
	ctx, cancel := c.cmdCtx()
	err := c.srv.store().WriteCtx(ctx, &b)
	cancel()
	if err != nil {
		c.writeStoreErr(err)
		return
	}
	c.srv.stats.coalescedSets.Add(int64(b.Len()))
	c.wr.WriteSimple("OK")
}

// execScan implements a keyspace walk in the shape of Redis SCAN:
// "SCAN cursor [COUNT n]". The cursor is positional — "0" starts from the
// smallest key, any other cursor resumes at the first key >= cursor, and
// the reply's next-cursor is (last returned key + 0x00), or "0" when the
// keyspace is exhausted. Guarantees every key present for the whole walk
// is returned exactly once.
func (c *conn) execScan(cmd [][]byte) {
	if len(cmd) != 2 && len(cmd) != 4 {
		c.argErr("scan")
		return
	}
	count := 10
	if len(cmd) == 4 {
		if strings.ToUpper(string(cmd[2])) != "COUNT" {
			c.wr.WriteError("ERR syntax error")
			return
		}
		n, err := parseInt(cmd[3])
		if err != nil || n <= 0 || n > 10000 {
			c.wr.WriteError("ERR COUNT must be in 1..10000")
			return
		}
		count = int(n)
	}
	var start []byte
	if string(cmd[1]) != "0" {
		start = cmd[1]
	}
	ctx, cancel := c.cmdCtx()
	pairs, err := c.srv.store().ScanCtx(ctx, start, count)
	cancel()
	if err != nil {
		c.writeStoreErr(err)
		return
	}
	next := []byte("0")
	if len(pairs) == count {
		last := pairs[len(pairs)-1].Key
		next = make([]byte, len(last)+1)
		copy(next, last)
	}
	c.wr.WriteArrayHeader(2)
	c.wr.WriteBulk(next)
	c.wr.WriteArrayHeader(len(pairs))
	for _, p := range pairs {
		c.wr.WriteBulk(p.Key)
	}
}
