package server

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzRESPParse throws arbitrary bytes at the command parser and the
// reply parser. Invariants: no panic, no unbounded allocation (the
// protocol limits cap every frame), errors are either ProtocolError or
// IO errors, and every successfully parsed command survives an
// encode→reparse round trip unchanged.
func FuzzRESPParse(f *testing.F) {
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("PING\r\nSET foo bar\r\n"))
	f.Add([]byte("*0\r\n*1\r\n$4\r\nINFO\r\n"))
	f.Add([]byte("$-1\r\n:42\r\n+OK\r\n-ERR boom\r\n*2\r\n$1\r\na\r\n$1\r\nb\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("*2\r\n$3\r\nDEL\r\n$0\r\n\r\n"))
	f.Add([]byte{'*', '1', '\r', '\n', '$', '3', '\r', '\n', 0x00, 0xff, '\r', '\r', '\n'})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Command stream.
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			cmd, err := r.ReadCommand()
			if err != nil {
				checkParseErr(t, err)
				break
			}
			if len(cmd) == 0 {
				t.Fatal("ReadCommand returned an empty command without error")
			}
			// Round trip: encode and reparse must reproduce the args.
			var buf bytes.Buffer
			w := NewWriter(&buf)
			w.WriteCommand(cmd...)
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			again, err := NewReader(bytes.NewReader(buf.Bytes())).ReadCommand()
			if err != nil {
				t.Fatalf("re-parse of %q failed: %v", buf.Bytes(), err)
			}
			if len(again) != len(cmd) {
				t.Fatalf("round trip arg count %d != %d", len(again), len(cmd))
			}
			for j := range cmd {
				if !bytes.Equal(again[j], cmd[j]) {
					t.Fatalf("round trip arg %d: %q != %q", j, again[j], cmd[j])
				}
			}
		}

		// Reply stream over the same bytes.
		r = NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			if _, err := r.ReadReply(); err != nil {
				checkParseErr(t, err)
				break
			}
		}
	})
}

func checkParseErr(t *testing.T, err error) {
	t.Helper()
	var perr ProtocolError
	if errors.As(err, &perr) {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return
	}
	t.Fatalf("parser returned unexpected error type: %v", err)
}
