package server_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"p2kvs"
	"p2kvs/internal/server"
)

// TestRedisCliStyleSession drives a full client session — the command
// tour redis-cli would make — against a real p2kvs store (8 workers,
// in-memory FS), exactly as cmd/p2kvs-server wires it, ending with a
// client-issued SHUTDOWN and a graceful drain.
func TestRedisCliStyleSession(t *testing.T) {
	store, err := p2kvs.Open(p2kvs.Options{
		Dir:      t.TempDir(),
		Workers:  8,
		InMemory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Store: store, CommandTimeout: 5 * time.Second})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()

	nc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rd := server.NewReader(nc)
	wr := server.NewWriter(nc)
	do := func(args ...string) server.Reply {
		t.Helper()
		bs := make([][]byte, len(args))
		for i, a := range args {
			bs[i] = []byte(a)
		}
		wr.WriteCommand(bs...)
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		rep, err := rd.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	if rep := do("PING"); string(rep.Str) != "PONG" {
		t.Fatalf("PING: %v", rep)
	}
	// COMMAND handshake (redis-cli does this on connect).
	if rep := do("COMMAND", "DOCS"); rep.Kind != '*' {
		t.Fatalf("COMMAND: %v", rep)
	}
	if rep := do("SET", "user:1", "ada"); string(rep.Str) != "OK" {
		t.Fatalf("SET: %v", rep)
	}
	if rep := do("GET", "user:1"); string(rep.Str) != "ada" {
		t.Fatalf("GET: %v", rep)
	}
	if rep := do("GET", "user:404"); !rep.Nil {
		t.Fatalf("GET missing: %v", rep)
	}
	if rep := do("MSET", "a", "1", "b", "2", "c", "3"); string(rep.Str) != "OK" {
		t.Fatalf("MSET: %v", rep)
	}
	rep := do("MGET", "a", "b", "nope", "c")
	if len(rep.Elems) != 4 || string(rep.Elems[1].Str) != "2" || !rep.Elems[2].Nil {
		t.Fatalf("MGET: %v", rep)
	}
	if rep := do("DEL", "a", "b"); rep.Int != 2 {
		t.Fatalf("DEL: %v", rep)
	}
	if rep := do("GET", "a"); !rep.Nil {
		t.Fatalf("GET deleted: %v", rep)
	}

	// Full SCAN walk returns every live key exactly once.
	for i := 0; i < 25; i++ {
		do("SET", fmt.Sprintf("scan:%03d", i), "x")
	}
	seen := map[string]int{}
	cursor := "0"
	for rounds := 0; ; rounds++ {
		if rounds > 100 {
			t.Fatal("SCAN did not terminate")
		}
		rep := do("SCAN", cursor, "COUNT", "7")
		if rep.Kind != '*' || len(rep.Elems) != 2 {
			t.Fatalf("SCAN reply: %v", rep)
		}
		for _, k := range rep.Elems[1].Elems {
			seen[string(k.Str)]++
		}
		cursor = string(rep.Elems[0].Str)
		if cursor == "0" {
			break
		}
	}
	for i := 0; i < 25; i++ {
		k := fmt.Sprintf("scan:%03d", i)
		if seen[k] != 1 {
			t.Fatalf("SCAN saw %q %d times", k, seen[k])
		}
	}

	// Inline (telnet-style) command on the same connection.
	if _, err := nc.Write([]byte("PING\r\n")); err != nil {
		t.Fatal(err)
	}
	if rep, err := rd.ReadReply(); err != nil || string(rep.Str) != "PONG" {
		t.Fatalf("inline PING: %v %v", rep, err)
	}

	info := do("INFO")
	if info.Kind != '$' {
		t.Fatalf("INFO: %v", info)
	}
	for _, want := range []string{"workers:8", "total_commands_processed:", "coalesced_set_ops:", "store_batch_write_ops:", "cmdstat_get:"} {
		if !strings.Contains(string(info.Str), want) {
			t.Fatalf("INFO missing %q in:\n%s", want, info.Str)
		}
	}

	if rep := do("BOGUSCMD"); !rep.IsError() || !strings.Contains(string(rep.Str), "unknown command") {
		t.Fatalf("unknown command: %v", rep)
	}

	// SHUTDOWN: acknowledged, signal fires, drain completes, Serve
	// returns nil.
	if rep := do("SHUTDOWN"); string(rep.Str) != "OK" {
		t.Fatalf("SHUTDOWN: %v", rep)
	}
	select {
	case <-srv.ShutdownSignal():
	case <-time.After(5 * time.Second):
		t.Fatal("SHUTDOWN signal did not fire")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
}
