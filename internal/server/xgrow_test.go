package server

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func buildCmd(nargs, argLen int) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	args := make([][]byte, nargs)
	a := bytes.Repeat([]byte("x"), argLen)
	for i := range args {
		args[i] = a
	}
	w.WriteCommand(args...)
	w.Flush()
	return buf.Bytes()
}

func TestXParseManyArgs(t *testing.T) {
	for _, n := range []int{1000, 10000, 50000, 100000} {
		payload := buildCmd(n, 8)
		r := NewReader(bytes.NewReader(payload))
		st := time.Now()
		cmd, err := r.ReadCommand()
		el := time.Since(st)
		if err != nil || len(cmd) != n {
			t.Fatalf("n=%d err=%v len=%d", n, err, len(cmd))
		}
		fmt.Printf("n=%d payloadKB=%d parse=%v\n", n, len(payload)/1024, el)
	}
}
