package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/checkpoint"
	"p2kvs/internal/core"
	"p2kvs/internal/repl"
	"p2kvs/internal/vfs"
)

// GSN log-shipping replication, server side. A replica issues
//
//	PSYNC <replid|?> <cursor0> <cursor1> ...
//
// over the normal RESP connection. If the cursors name this primary's
// lineage and still sit inside the retained backlog window, the reply is
// "+CONTINUE <replid>" and the connection switches to the binary frame
// protocol (internal/repl), streaming every backlog record past the
// cursors. Otherwise the reply is "+FULLSYNC <replid> <workers>": the
// primary stages a GSN-barrier checkpoint, ships every image file as a
// FrameFile, terminates the image with the FrameManifest, and streams
// from the manifest's per-worker watermarks — the full-sync handoff is
// exactly the checkpoint-cursor contract the core layer guarantees.
//
// The replica side is a managed loop (replicaMgr): dial, PSYNC from the
// persisted cursor state, restore+swap the store on a full sync, apply
// data frames through Store.ApplyRepl, acknowledge applied cursors
// (which advance the primary-side pin deferring backlog truncation),
// and reconnect with capped backoff when the link drops.

const (
	// replHeartbeatInterval paces primary→replica liveness frames on an
	// idle stream; each carries the primary's per-worker watermarks so an
	// idle replica still tracks its lag.
	replHeartbeatInterval = time.Second
	// replAckInterval paces replica→primary progress acks during a busy
	// stream (each ack also persists the cursor state file).
	replAckInterval = 200 * time.Millisecond
	// replReadTimeout tears down a link with no traffic at all — several
	// missed heartbeats.
	replReadTimeout = 5 * replHeartbeatInterval
	// replWriteTimeout bounds stream writes so a wedged peer cannot pin
	// the goroutine forever.
	replWriteTimeout = 30 * time.Second
	// replDialTimeout bounds the replica's connect attempt.
	replDialTimeout = 5 * time.Second
	// replHandshakeTimeout bounds the wait for the PSYNC reply, which on
	// a full sync arrives only after the primary stages a checkpoint.
	replHandshakeTimeout = 60 * time.Second
	// replStateName is the cursor state file inside Config.ReplDir.
	replStateName = "REPLSTATE"
)

// replState is the server's replication role state: the replica manager
// (when the server follows a primary) plus primary-side sync counters
// and the set of attached replica links.
type replState struct {
	srv *Server

	mu    sync.Mutex
	mgr   *replicaMgr          // non-nil while the server is a replica
	links map[string]*replLink // primary side: attached replica streams

	// Primary-side lifetime counters.
	fullSyncsServed    atomic.Int64
	partialSyncsServed atomic.Int64
	// Replica-side lifetime counters (survive REPLICAOF changes).
	fullSyncsDone    atomic.Int64
	partialSyncsDone atomic.Int64

	// fullSyncMu serializes full-sync image staging: concurrent
	// checkpoints into the shared sync directory would race on the
	// backup set's sequence numbers and its GC.
	fullSyncMu sync.Mutex
	linkSeq    atomic.Int64
}

func newReplState(s *Server) *replState {
	return &replState{srv: s, links: make(map[string]*replLink)}
}

// replLink is one attached replica stream, tracked for INFO.
type replLink struct {
	id   string
	addr string

	mu      sync.Mutex
	ack     []uint64
	lastAck time.Time
	full    bool // bootstrapped via full sync
}

func (l *replLink) setAck(cursors []uint64) {
	l.mu.Lock()
	l.ack = append(l.ack[:0], cursors...)
	l.lastAck = time.Now()
	l.mu.Unlock()
}

func (l *replLink) snapshot() (ack []uint64, last time.Time, full bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]uint64(nil), l.ack...), l.lastAck, l.full
}

func (rs *replState) attach(id, addr string) *replLink {
	l := &replLink{id: id, addr: addr}
	rs.mu.Lock()
	rs.links[id] = l
	rs.mu.Unlock()
	return l
}

func (rs *replState) detach(id string) {
	rs.mu.Lock()
	delete(rs.links, id)
	rs.mu.Unlock()
}

// isReplica reports whether the server currently follows a primary —
// the read-only guard every write command checks before touching the
// store.
func (rs *replState) isReplica() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.mgr != nil
}

// startReplica points the server at a primary, starting (or re-pointing)
// the replica manager.
func (rs *replState) startReplica(addr string) error {
	cfg := rs.srv.cfg
	if cfg.RestoreStore == nil {
		return errors.New("replication unavailable: server built without a RestoreStore callback")
	}
	if cfg.ReplDir == "" {
		return errors.New("replication unavailable: server started without a replication directory (-repl_dir)")
	}
	if rs.srv.store().ReplLog() == nil {
		return errors.New("replication unavailable: store opened without a replication backlog (-repl_backlog)")
	}
	rs.mu.Lock()
	if rs.mgr != nil && rs.mgr.addr == addr {
		rs.mu.Unlock()
		return nil
	}
	old := rs.mgr
	rs.mgr = nil
	rs.mu.Unlock()
	if old != nil {
		old.halt()
	}
	m := &replicaMgr{
		srv:    rs.srv,
		rs:     rs,
		addr:   addr,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		status: "connecting",
	}
	m.loadState()
	rs.mu.Lock()
	rs.mgr = m
	rs.mu.Unlock()
	go m.run()
	rs.srv.cfg.Logf("p2kvs-server: replicating from %s", addr)
	return nil
}

// stopReplica detaches from the primary (REPLICAOF NO ONE / shutdown);
// the store keeps serving — now as a writable primary of its own
// lineage.
func (rs *replState) stopReplica() {
	rs.mu.Lock()
	m := rs.mgr
	rs.mgr = nil
	rs.mu.Unlock()
	if m != nil {
		m.halt()
		rs.srv.cfg.Logf("p2kvs-server: replication stopped (was following %s)", m.addr)
	}
}

func (rs *replState) manager() *replicaMgr {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.mgr
}

// ---------------------------------------------------------------------------
// Primary side: PSYNC handler and the backlog stream feeder
// ---------------------------------------------------------------------------

// execPsync handles the replica handshake and, on success, turns this
// connection into a replication stream for its remaining lifetime.
func (c *conn) execPsync(cmd [][]byte) {
	st := c.srv.store()
	log := st.ReplLog()
	if log == nil {
		c.wr.WriteError("ERR replication disabled: store opened without a replication backlog")
		return
	}
	if len(cmd) < 2 {
		c.argErr("psync")
		return
	}
	replid := string(cmd[1])
	cursors := make([]uint64, 0, len(cmd)-2)
	for _, a := range cmd[2:] {
		v, err := strconv.ParseUint(string(a), 10, 64)
		if err != nil {
			c.wr.WriteError("ERR PSYNC cursors must be decimal GSNs")
			return
		}
		cursors = append(cursors, v)
	}

	pinID := fmt.Sprintf("replica-%s-%d", c.nc.RemoteAddr(), c.srv.repl.linkSeq.Add(1))
	log.Pin(pinID)
	defer log.Unpin(pinID)
	link := c.srv.repl.attach(pinID, c.nc.RemoteAddr().String())
	defer c.srv.repl.detach(pinID)

	// Partial sync: same lineage and every cursor still inside the
	// retained window. SetPin runs before the Covers check, so a record
	// the check admits can no longer be trimmed out from under the
	// stream; if a trim won the race, Covers fails and we fall back.
	partial := false
	if replid == log.ID() && len(cursors) == log.Workers() {
		log.SetPin(pinID, cursors)
		partial = log.Covers(cursors)
	}
	start := append([]uint64(nil), cursors...)
	if partial {
		c.srv.repl.partialSyncsServed.Add(1)
		c.wr.WriteSimple("CONTINUE " + log.ID())
		if c.flush() != nil {
			return
		}
	} else {
		if !c.serveFullSync(st, log, pinID, &start) {
			return
		}
		c.srv.repl.fullSyncsServed.Add(1)
		link.mu.Lock()
		link.full = true
		link.mu.Unlock()
	}
	link.setAck(start)
	c.closing = true // the connection never returns to command mode
	c.streamBacklog(log, pinID, link, start)
}

// serveFullSync stages a checkpoint image and ships it: FrameFile per
// image file, FrameManifest last. On success *cursors holds the
// manifest's per-worker watermarks — where the stream resumes.
func (c *conn) serveFullSync(st *core.Store, log *repl.Log, pinID string, cursors *[]uint64) bool {
	cfg := c.srv.cfg
	if cfg.ReplDir == "" {
		c.wr.WriteError("ERR full sync unavailable: server started without a replication directory")
		return false
	}
	rs := c.srv.repl
	fs := cfg.replFS()
	dir := cfg.ReplDir + "/sync"

	type imgFile struct {
		name string
		data []byte
	}
	rs.fullSyncMu.Lock()
	m, err := st.Checkpoint(fs, dir)
	if err != nil {
		rs.fullSyncMu.Unlock()
		c.wr.WriteError("ERR full sync checkpoint failed: " + err.Error())
		return false
	}
	// The pin moves to the image's watermarks before writes resume past
	// them on this goroutine; records after the checkpoint barrier are
	// now retained for the stream.
	log.SetPin(pinID, m.WorkerGSN)
	// Read the whole image (and the committed manifest bytes) while the
	// staging directory is quiescent: the next full sync's checkpoint GC
	// may delete files this manifest no longer shares.
	files := make([]imgFile, 0, len(m.Files)+1)
	readErr := func() error {
		for _, f := range m.Files {
			data, err := vfs.ReadFile(fs, dir+"/"+f.Path)
			if err != nil {
				return err
			}
			files = append(files, imgFile{f.Path, data})
		}
		data, err := vfs.ReadFile(fs, dir+"/"+checkpoint.ManifestName)
		if err != nil {
			return err
		}
		files = append(files, imgFile{"", data}) // sentinel: manifest frame
		return nil
	}()
	rs.fullSyncMu.Unlock()
	if readErr != nil {
		c.wr.WriteError("ERR full sync image read failed: " + readErr.Error())
		return false
	}

	c.wr.WriteSimple(fmt.Sprintf("FULLSYNC %s %d", log.ID(), log.Workers()))
	if c.flush() != nil {
		return false
	}
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	for _, f := range files {
		fr := repl.Frame{Kind: repl.FrameFile, Payload: repl.EncodeFile(f.name, f.data)}
		if f.name == "" {
			fr = repl.Frame{Kind: repl.FrameManifest, Payload: f.data}
		}
		if err := repl.WriteFrame(bw, fr); err != nil {
			return false
		}
	}
	c.nc.SetWriteDeadline(time.Now().Add(replWriteTimeout))
	err = bw.Flush()
	c.nc.SetWriteDeadline(time.Time{})
	if err != nil {
		return false
	}
	*cursors = append([]uint64(nil), m.WorkerGSN...)
	return true
}

// streamBacklog feeds the replication stream: data frames for every
// backlog record past the cursors, heartbeats when idle, and a reader
// goroutine consuming the replica's acks (which advance the pin). It
// returns when the link drops, the server drains, or a full sync swaps
// the serving store (stale log).
func (c *conn) streamBacklog(log *repl.Log, pinID string, link *replLink, cursors []uint64) {
	nc := c.nc
	stop := make(chan struct{})
	var once sync.Once
	teardown := func() { once.Do(func() { close(stop); nc.Close() }) }
	defer teardown()

	go func() {
		defer teardown()
		for {
			// Rolling deadline (replacing readWindow's absolute idle
			// deadline): the replica acks at least once per heartbeat, so
			// silence this long means a dead peer.
			nc.SetReadDeadline(time.Now().Add(replReadTimeout))
			f, err := repl.ReadFrame(c.rd.br)
			if err != nil {
				return
			}
			if f.Kind != repl.FrameAck {
				return // protocol violation: tear the link down
			}
			ack, err := repl.DecodeCursors(f.Payload)
			if err != nil {
				return
			}
			log.Advance(pinID, ack)
			link.setAck(ack)
		}
	}()

	bw := bufio.NewWriterSize(nc, 64<<10)
	flush := func() error {
		nc.SetWriteDeadline(time.Now().Add(replWriteTimeout))
		err := bw.Flush()
		nc.SetWriteDeadline(time.Time{})
		return err
	}
	for {
		select {
		case <-stop:
			return
		case <-c.srv.drainCh:
			return
		default:
		}
		if c.srv.store().ReplLog() != log {
			return // store swapped under us (this node became a replica)
		}
		wake := log.Wait() // taken before the scan: appends during it re-wake
		sent := false
		for w := 0; w < log.Workers(); w++ {
			recs, err := log.Since(w, cursors[w])
			if err != nil {
				return // pinned cursors cannot hole; treat as fatal anyway
			}
			for _, rec := range recs {
				f := repl.Frame{Kind: repl.FrameData, Worker: uint32(w), GSN: rec.GSN, Payload: rec.Payload}
				if err := repl.WriteFrame(bw, f); err != nil {
					return
				}
				cursors[w] = rec.GSN
				sent = true
			}
		}
		if flush() != nil {
			return
		}
		if sent {
			continue
		}
		select {
		case <-wake:
		case <-time.After(replHeartbeatInterval):
			hb := repl.Frame{Kind: repl.FrameHeartbeat, Payload: repl.EncodeCursors(log.LastGSN())}
			if repl.WriteFrame(bw, hb) != nil || flush() != nil {
				return
			}
		case <-stop:
			return
		case <-c.srv.drainCh:
			return
		}
	}
}

// execReplicaOf implements REPLICAOF <host> <port> / REPLICAOF NO ONE
// (SLAVEOF is accepted as the legacy alias).
func (c *conn) execReplicaOf(cmd [][]byte) {
	if len(cmd) != 3 {
		c.argErr("replicaof")
		return
	}
	host, port := string(cmd[1]), string(cmd[2])
	if strings.EqualFold(host, "no") && strings.EqualFold(port, "one") {
		c.srv.repl.stopReplica()
		c.wr.WriteSimple("OK")
		return
	}
	if _, err := strconv.ParseUint(port, 10, 16); err != nil {
		c.wr.WriteError("ERR invalid port")
		return
	}
	if err := c.srv.repl.startReplica(net.JoinHostPort(host, port)); err != nil {
		c.wr.WriteError("ERR " + err.Error())
		return
	}
	c.wr.WriteSimple("OK")
}

// ---------------------------------------------------------------------------
// Replica side: the managed sync loop
// ---------------------------------------------------------------------------

// replicaMgr follows one primary: PSYNC handshake, full-sync restore
// when needed, stream apply, acks, cursor persistence, reconnect with
// capped backoff.
type replicaMgr struct {
	srv  *Server
	rs   *replState
	addr string

	stop    chan struct{}
	done    chan struct{}
	stopped atomic.Bool

	mu        sync.Mutex
	nc        net.Conn // current link (closed by halt to unblock reads)
	status    string   // connecting | syncing | up | down
	replid    string   // lineage the cursors are valid against
	cursors   []uint64 // per-worker applied cursors
	masterGSN []uint64 // primary watermarks from the last heartbeat
	lastErr   string
	recvSeq   int64
}

func (m *replicaMgr) halt() {
	if m.stopped.Swap(true) {
		<-m.done
		return
	}
	close(m.stop)
	m.mu.Lock()
	if m.nc != nil {
		m.nc.Close()
	}
	m.mu.Unlock()
	<-m.done
}

func (m *replicaMgr) setConn(nc net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped.Load() {
		return false
	}
	m.nc = nc
	return true
}

func (m *replicaMgr) setStatus(status string, err error) {
	m.mu.Lock()
	m.status = status
	if err != nil {
		m.lastErr = err.Error()
	}
	if status == "down" {
		// The primary's watermarks are only trustworthy while the link
		// that delivered them lives: the next link's heartbeat must
		// re-establish them before INFO may report a concrete lag.
		m.masterGSN = nil
	}
	m.mu.Unlock()
}

func (m *replicaMgr) run() {
	defer close(m.done)
	backoff := 50 * time.Millisecond
	for {
		if m.stopped.Load() {
			return
		}
		madeProgress, err := m.syncOnce()
		if m.stopped.Load() {
			return
		}
		m.setStatus("down", err)
		if err != nil {
			m.srv.cfg.Logf("p2kvs-server: replication link to %s: %v", m.addr, err)
		}
		if madeProgress {
			backoff = 50 * time.Millisecond
		}
		select {
		case <-m.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// syncOnce runs one connection's lifetime: handshake, optional full
// sync, then the apply loop until the link breaks. madeProgress reports
// whether the handshake completed (resets the reconnect backoff).
func (m *replicaMgr) syncOnce() (madeProgress bool, err error) {
	m.setStatus("connecting", nil)
	nc, err := net.DialTimeout("tcp", m.addr, replDialTimeout)
	if err != nil {
		return false, err
	}
	defer nc.Close()
	if !m.setConn(nc) {
		return false, nil
	}
	defer m.setConn(nil)
	rd, wr := NewReader(nc), NewWriter(nc)

	replid, cursors := m.lineage()
	args := [][]byte{[]byte("PSYNC"), []byte(replid)}
	for _, cur := range cursors {
		args = append(args, []byte(strconv.FormatUint(cur, 10)))
	}
	wr.WriteCommand(args...)
	if err := wr.Flush(); err != nil {
		return false, err
	}
	nc.SetReadDeadline(time.Now().Add(replHandshakeTimeout))
	rep, err := rd.ReadReply()
	if err != nil {
		return false, err
	}
	if rep.IsError() {
		return false, fmt.Errorf("primary refused PSYNC: %s", rep.Str)
	}
	fields := strings.Fields(string(rep.Str))
	switch {
	case len(fields) == 2 && fields[0] == "CONTINUE":
		m.rs.partialSyncsDone.Add(1)
		m.setLineage(fields[1], cursors)
	case len(fields) == 3 && fields[0] == "FULLSYNC":
		m.setStatus("syncing", nil)
		if err := m.receiveFullSync(nc, rd); err != nil {
			return true, fmt.Errorf("full sync: %w", err)
		}
		m.rs.fullSyncsDone.Add(1)
		m.srv.cfg.Logf("p2kvs-server: full sync from %s complete", m.addr)
	default:
		return false, fmt.Errorf("unexpected PSYNC reply %q", rep.Str)
	}
	m.setStatus("up", nil)
	return true, m.applyStream(nc, rd)
}

// receiveFullSync downloads the checkpoint image into a fresh staging
// directory and installs it as the serving store.
func (m *replicaMgr) receiveFullSync(nc net.Conn, rd *Reader) error {
	cfg := m.srv.cfg
	fs := cfg.replFS()
	m.mu.Lock()
	m.recvSeq++
	dir := fmt.Sprintf("%s/recv-%d", cfg.ReplDir, m.recvSeq)
	m.mu.Unlock()
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	for {
		nc.SetReadDeadline(time.Now().Add(replReadTimeout))
		f, err := repl.ReadFrame(rd.br)
		if err != nil {
			return err
		}
		switch f.Kind {
		case repl.FrameFile:
			name, content, err := repl.DecodeFile(f.Payload)
			if err != nil {
				return err
			}
			if !safeImagePath(name) {
				return fmt.Errorf("unsafe image path %q", name)
			}
			if err := writeImageFile(fs, dir, name, content); err != nil {
				return err
			}
		case repl.FrameManifest:
			man, err := checkpoint.Parse(f.Payload)
			if err != nil {
				return err
			}
			if err := vfs.WriteFile(fs, dir+"/"+checkpoint.ManifestName, f.Payload); err != nil {
				return err
			}
			return m.installImage(fs, dir, man)
		default:
			return fmt.Errorf("unexpected frame kind %d during full sync", f.Kind)
		}
	}
}

// installImage swaps the received image in as the serving store. Order
// matters for crash safety: the cursor state is cleared first (a crash
// mid-install then redoes the full sync instead of resuming into a
// hole), the old store is closed (releasing its directory so a
// host-filesystem RestoreStore may rebuild it in place), then the new
// store is opened and swapped in, and only then is the new lineage
// persisted.
func (m *replicaMgr) installImage(fs vfs.FS, dir string, man *checkpoint.Manifest) error {
	m.clearState()
	old := m.srv.store()
	old.Close()
	st, err := m.srv.cfg.RestoreStore(fs, dir)
	if err != nil {
		// The old store is closed: commands fail with -SHUTDOWN until a
		// retried full sync succeeds. Loud and recoverable beats serving
		// a half-installed image.
		return err
	}
	if st.ReplLog() == nil {
		st.Close()
		return errors.New("RestoreStore returned a store without a replication backlog")
	}
	m.srv.storeP.Store(st)
	m.setLineage(man.ReplID, append([]uint64(nil), man.WorkerGSN...))
	m.persistState()
	cleanupImageDir(fs, dir)
	return nil
}

// applyStream is the replica's steady state: apply data frames through
// the engine write path, track primary watermarks from heartbeats, and
// acknowledge applied cursors (persisting them) on every heartbeat and
// at least every replAckInterval under load.
func (m *replicaMgr) applyStream(nc net.Conn, rd *Reader) error {
	var lastAck time.Time
	ackNow := func() error {
		f := repl.Frame{Kind: repl.FrameAck, Payload: repl.EncodeCursors(m.snapshotCursors())}
		nc.SetWriteDeadline(time.Now().Add(replWriteTimeout))
		err := repl.WriteFrame(nc, f)
		nc.SetWriteDeadline(time.Time{})
		if err != nil {
			return err
		}
		m.persistState()
		lastAck = time.Now()
		return nil
	}
	if err := ackNow(); err != nil {
		return err
	}
	for {
		if m.stopped.Load() {
			return nil
		}
		nc.SetReadDeadline(time.Now().Add(replReadTimeout))
		f, err := repl.ReadFrame(rd.br)
		if err != nil {
			return err
		}
		switch f.Kind {
		case repl.FrameData:
			ops, err := repl.DecodeOps(f.Payload)
			if err != nil {
				return err
			}
			if err := m.srv.store().ApplyRepl(int(f.Worker), f.GSN, ops); err != nil {
				return err
			}
			m.advanceCursor(int(f.Worker), f.GSN)
			if time.Since(lastAck) >= replAckInterval {
				if err := ackNow(); err != nil {
					return err
				}
			}
		case repl.FrameHeartbeat:
			curs, err := repl.DecodeCursors(f.Payload)
			if err != nil {
				return err
			}
			m.mu.Lock()
			m.masterGSN = curs
			m.mu.Unlock()
			if err := ackNow(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unexpected frame kind %d in stream", f.Kind)
		}
	}
}

// lineage returns the PSYNC identity to resume from ("?" = none: the
// primary decides, and will answer with a full sync).
func (m *replicaMgr) lineage() (string, []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.replid == "" || len(m.cursors) == 0 {
		return "?", nil
	}
	return m.replid, append([]uint64(nil), m.cursors...)
}

func (m *replicaMgr) setLineage(replid string, cursors []uint64) {
	m.mu.Lock()
	m.replid = replid
	m.cursors = cursors
	m.mu.Unlock()
}

func (m *replicaMgr) snapshotCursors() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]uint64(nil), m.cursors...)
}

func (m *replicaMgr) advanceCursor(worker int, gsn uint64) {
	m.mu.Lock()
	if worker < len(m.cursors) && gsn > m.cursors[worker] {
		m.cursors[worker] = gsn
	} else if worker >= len(m.cursors) {
		grown := make([]uint64, worker+1)
		copy(grown, m.cursors)
		grown[worker] = gsn
		m.cursors = grown
	}
	m.mu.Unlock()
}

// --- cursor state persistence -------------------------------------------

func (m *replicaMgr) statePath() string { return m.srv.cfg.ReplDir + "/" + replStateName }

// loadState primes the lineage from the persisted cursor state, if any;
// anything unreadable degrades to "no lineage" (→ full sync).
func (m *replicaMgr) loadState() {
	fs := m.srv.cfg.replFS()
	data, err := vfs.ReadFile(fs, m.statePath())
	if err != nil {
		return
	}
	replid, cursors, err := repl.DecodeState(data)
	if err != nil {
		m.srv.cfg.Logf("p2kvs-server: ignoring %s: %v", replStateName, err)
		return
	}
	m.setLineage(replid, cursors)
}

// persistState writes the cursor state atomically. Best effort: a
// failure only costs a full sync after the next process restart.
func (m *replicaMgr) persistState() {
	replid, cursors := m.lineage()
	if replid == "?" {
		return
	}
	fs := m.srv.cfg.replFS()
	if err := fs.MkdirAll(m.srv.cfg.ReplDir); err != nil {
		return
	}
	tmp := m.statePath() + ".tmp"
	if err := vfs.WriteFile(fs, tmp, repl.EncodeState(replid, cursors)); err != nil {
		m.srv.cfg.Logf("p2kvs-server: persisting %s: %v", replStateName, err)
		return
	}
	if err := fs.Rename(tmp, m.statePath()); err != nil {
		m.srv.cfg.Logf("p2kvs-server: persisting %s: %v", replStateName, err)
	}
}

// clearState removes the cursor state before a full-sync install.
func (m *replicaMgr) clearState() {
	fs := m.srv.cfg.replFS()
	if fs.Exists(m.statePath()) {
		fs.Remove(m.statePath())
	}
}

// --- image staging helpers ----------------------------------------------

// safeImagePath accepts only clean relative paths (the same rule the
// checkpoint manifest parser enforces), so a hostile FrameFile name can
// never escape the staging directory.
func safeImagePath(p string) bool {
	if p == "" || strings.HasPrefix(p, "/") {
		return false
	}
	for _, part := range strings.Split(p, "/") {
		if part == "" || part == "." || part == ".." {
			return false
		}
	}
	return true
}

func writeImageFile(fs vfs.FS, root, name string, content []byte) error {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		if err := fs.MkdirAll(root + "/" + name[:i]); err != nil {
			return err
		}
	}
	return vfs.WriteFile(fs, root+"/"+name, content)
}

// cleanupImageDir removes a consumed staging image. Best effort; a
// leftover costs disk, never correctness.
func cleanupImageDir(fs vfs.FS, dir string) {
	names, err := fs.List(dir)
	if err != nil {
		return
	}
	for _, n := range names {
		if fs.Remove(dir+"/"+n) != nil {
			// Probably a subdirectory: descend one level (images are at
			// most root + worker-N/ deep).
			subs, err := fs.List(dir + "/" + n)
			if err != nil {
				continue
			}
			for _, s := range subs {
				fs.Remove(dir + "/" + n + "/" + s)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// INFO
// ---------------------------------------------------------------------------

// infoSection renders the "# Replication" block of INFO.
func (rs *replState) infoSection(b *strings.Builder, st *core.Store) {
	fmt.Fprintf(b, "# Replication\r\n")
	mgr := rs.manager()
	role := "master"
	if mgr != nil {
		role = "replica"
	}
	fmt.Fprintf(b, "role:%s\r\n", role)
	log := st.ReplLog()
	if log == nil {
		fmt.Fprintf(b, "repl_enabled:0\r\n")
		return
	}
	fmt.Fprintf(b, "repl_enabled:1\r\n")
	ls := log.Stats()
	fmt.Fprintf(b, "repl_id:%s\r\n", ls.ID)
	fmt.Fprintf(b, "master_repl_gsn:%d\r\n", st.GSN())
	fmt.Fprintf(b, "repl_backlog_bytes:%d\r\n", ls.Bytes)
	fmt.Fprintf(b, "repl_backlog_records:%d\r\n", ls.Records)
	fmt.Fprintf(b, "repl_backlog_appended:%d\r\n", ls.Appended)
	fmt.Fprintf(b, "repl_backlog_trimmed:%d\r\n", ls.Trimmed)
	fmt.Fprintf(b, "repl_full_syncs_served:%d\r\n", rs.fullSyncsServed.Load())
	fmt.Fprintf(b, "repl_partial_syncs_served:%d\r\n", rs.partialSyncsServed.Load())

	rs.mu.Lock()
	links := make([]*replLink, 0, len(rs.links))
	for _, l := range rs.links {
		links = append(links, l)
	}
	rs.mu.Unlock()
	fmt.Fprintf(b, "connected_replicas:%d\r\n", len(links))
	last := ls.LastGSN
	for i, l := range links {
		ack, lastAck, full := l.snapshot()
		var lag uint64
		for w := 0; w < len(last) && w < len(ack); w++ {
			if last[w] > ack[w] {
				lag += last[w] - ack[w]
			}
		}
		kind := "partial"
		if full {
			kind = "full"
		}
		ago := int64(-1)
		if !lastAck.IsZero() {
			ago = int64(time.Since(lastAck).Milliseconds())
		}
		fmt.Fprintf(b, "replica%d:addr=%s,sync=%s,lag_gsn=%d,last_ack_ms=%d\r\n", i, l.addr, kind, lag, ago)
	}

	if mgr != nil {
		mgr.mu.Lock()
		status, lastErr := mgr.status, mgr.lastErr
		cursors := append([]uint64(nil), mgr.cursors...)
		master := append([]uint64(nil), mgr.masterGSN...)
		addr := mgr.addr
		mgr.mu.Unlock()
		host, port, _ := net.SplitHostPort(addr)
		fmt.Fprintf(b, "master_host:%s\r\n", host)
		fmt.Fprintf(b, "master_port:%s\r\n", port)
		fmt.Fprintf(b, "master_link_status:%s\r\n", status)
		// Until the first heartbeat delivers the primary's watermarks the
		// lag is unknown, not zero: a resync may still be replaying. -1
		// keeps pollers waiting instead of declaring convergence early.
		if len(master) == 0 {
			fmt.Fprintf(b, "replica_lag_gsn:-1\r\n")
		} else {
			var lag uint64
			for w := 0; w < len(master) && w < len(cursors); w++ {
				if master[w] > cursors[w] {
					lag += master[w] - cursors[w]
				}
				fmt.Fprintf(b, "replica_lag_worker_%d:%d\r\n", w, maxLag(master[w], cursors[w]))
			}
			fmt.Fprintf(b, "replica_lag_gsn:%d\r\n", lag)
		}
		fmt.Fprintf(b, "replica_full_syncs:%d\r\n", rs.fullSyncsDone.Load())
		fmt.Fprintf(b, "replica_partial_syncs:%d\r\n", rs.partialSyncsDone.Load())
		if lastErr != "" {
			fmt.Fprintf(b, "master_link_last_error:%s\r\n", strings.ReplaceAll(lastErr, "\r\n", " "))
		}
	} else {
		fmt.Fprintf(b, "replica_full_syncs:%d\r\n", rs.fullSyncsDone.Load())
		fmt.Fprintf(b, "replica_partial_syncs:%d\r\n", rs.partialSyncsDone.Load())
	}
}

func maxLag(master, cursor uint64) uint64 {
	if master > cursor {
		return master - cursor
	}
	return 0
}
