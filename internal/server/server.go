package server

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/core"
	"p2kvs/internal/histogram"
	"p2kvs/internal/vfs"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address for ListenAndServe, e.g.
	// "127.0.0.1:6380".
	Addr string
	// Store is the p2KVS store the server fronts. Required. The server
	// owns its lifecycle from Shutdown on: a graceful drain ends with
	// Store.Close.
	Store *core.Store
	// CommandTimeout bounds each command (or coalesced pipeline batch)
	// with a context deadline; expiry surfaces to the client as a
	// -TIMEOUT reply. Zero means no per-command deadline.
	CommandTimeout time.Duration
	// MaxConns caps concurrent connections (default 1024). The accept
	// loop blocks when the cap is reached — backpressure at the listener
	// instead of unbounded goroutine growth.
	MaxConns int
	// MaxPipeline caps how many pipelined commands are drained per read
	// window before replies are flushed (default 128). It also bounds
	// the size of a coalesced SET/GET run.
	MaxPipeline int
	// ConnIdleTimeout closes a connection that sends no command for this
	// long, so abandoned sockets cannot pin the MaxConns semaphore
	// forever. Zero disables the idle check.
	ConnIdleTimeout time.Duration
	// WriteTimeout bounds each reply flush; a client that stops reading
	// (filling its receive window) is disconnected instead of wedging the
	// serving goroutine. Zero disables the write deadline.
	WriteTimeout time.Duration
	// DebugAddr, when non-empty, starts an HTTP listener serving
	// /metrics (JSON), /debug/vars (expvar) and /debug/pprof.
	DebugAddr string
	// CheckpointDir is the backup set BGSAVE writes into. Empty disables
	// BGSAVE (the command replies with an error).
	CheckpointDir string
	// CheckpointFS is the filesystem holding CheckpointDir; nil means the
	// host filesystem. Tests point it at an in-memory FS.
	CheckpointFS vfs.FS
	// ReplDir is the replication working directory: the primary stages
	// full-sync checkpoint images in ReplDir/sync, and a replica keeps
	// its received images and its cursor state file (REPLSTATE) there.
	// Empty disables full-sync serving and the replica role.
	ReplDir string
	// ReplFS is the filesystem holding ReplDir; nil means the host
	// filesystem. Tests point it at an in-memory FS.
	ReplFS vfs.FS
	// RestoreStore rebuilds the serving store from a received full-sync
	// image (a verified checkpoint set at dir on fs). The server closes
	// the old store before calling it, so a host-filesystem callback may
	// rebuild the data directory in place. Required for the replica role
	// (REPLICAOF / -replicaof).
	RestoreStore func(fs vfs.FS, dir string) (*core.Store, error)
	// ReplicaOf, when non-empty ("host:port"), starts the server as a
	// replica of that primary (equivalent to an immediate REPLICAOF).
	ReplicaOf string
	// Logf receives server logs; nil discards them.
	Logf func(format string, args ...any)
}

// replFS resolves the replication filesystem (host by default).
func (c Config) replFS() vfs.FS {
	if c.ReplFS != nil {
		return c.ReplFS
	}
	return vfs.NewOS()
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = 128
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// latency-tracked command classes. Commands outside the set land in
// "other".
var latCommands = []string{"get", "set", "del", "mget", "mset", "scan", "info", "ping", "scrub", "other"}

// serverStats is the server-side counter block surfaced by INFO and
// /metrics.
type serverStats struct {
	accepted      atomic.Int64 // connections accepted over the lifetime
	active        atomic.Int64 // connections currently open
	commands      atomic.Int64 // commands processed
	pipelines     atomic.Int64 // read windows processed
	coalescedSets atomic.Int64 // SET ops committed via a coalesced WriteCtx batch
	coalescedGets atomic.Int64 // GET ops resolved via a coalesced MultiGetCtx
	loadshed      atomic.Int64 // -LOADSHED replies (admission control)
	timeouts      atomic.Int64 // -TIMEOUT replies (deadline expiry)
	unknown       atomic.Int64 // unknown commands
	protoErrors   atomic.Int64 // protocol errors (connection then closed)
	panics        atomic.Int64 // per-connection panics recovered (conn closed, server kept serving)
	idleClosed    atomic.Int64 // connections closed by ConnIdleTimeout

	corruptionReplies atomic.Int64 // -CORRUPTION replies (at-rest damage surfaced to a client)

	lat map[string]*histogram.H // per-command latency, fixed key set
}

func newServerStats() *serverStats {
	st := &serverStats{lat: make(map[string]*histogram.H, len(latCommands))}
	for _, c := range latCommands {
		st.lat[c] = &histogram.H{}
	}
	return st
}

// latFor returns the latency histogram for a (lower-case) command name.
func (st *serverStats) latFor(name string) *histogram.H {
	if h, ok := st.lat[name]; ok {
		return h
	}
	return st.lat["other"]
}

// Server is the RESP front-end.
type Server struct {
	cfg Config
	// storeP is the serving store. It is a swappable pointer because a
	// replica's full sync replaces the whole store: the manager closes
	// the old one, restores the received image, and swaps the new store
	// in. Handlers load it once per command via store().
	storeP atomic.Pointer[core.Store]
	stats  *serverStats
	repl   *replState

	lis   net.Listener
	debug *debugListener

	mu    sync.Mutex
	conns map[*conn]struct{}

	sem    chan struct{} // connection-cap semaphore
	connWG sync.WaitGroup

	draining   atomic.Bool
	drainCh    chan struct{} // closed when Shutdown begins
	shutdownCh chan struct{} // closed when a client issues SHUTDOWN
	sigOnce    sync.Once
	downOnce   sync.Once
	downErr    error

	// BGSAVE state: one background checkpoint at a time; the last
	// failure is surfaced in INFO so an unattended BGSAVE cannot fail
	// silently.
	saving      atomic.Bool
	saveWG      sync.WaitGroup
	saveErrMu   sync.Mutex
	lastSaveErr error

	// RESHARD state, mirroring the BGSAVE shape: one online reshard at a
	// time, acknowledged immediately, completion observable via
	// RESHARD STATUS and INFO's # Reshard section.
	resharding     atomic.Bool
	reshardWG      sync.WaitGroup
	reshardErrMu   sync.Mutex
	lastReshardErr error

	start time.Time
}

// bgsave starts a background checkpoint into cfg.CheckpointDir. It
// returns false when one is already running.
func (s *Server) bgsave() bool {
	if !s.saving.CompareAndSwap(false, true) {
		return false
	}
	fs := s.cfg.CheckpointFS
	if fs == nil {
		fs = vfs.NewOS()
	}
	s.saveWG.Add(1)
	go func() {
		defer s.saveWG.Done()
		defer s.saving.Store(false)
		_, err := s.store().Checkpoint(fs, s.cfg.CheckpointDir)
		s.saveErrMu.Lock()
		s.lastSaveErr = err
		s.saveErrMu.Unlock()
		if err != nil {
			s.cfg.Logf("p2kvs-server: background save failed: %v", err)
		} else {
			s.cfg.Logf("p2kvs-server: background save complete")
		}
	}()
	return true
}

func (s *Server) lastSaveError() error {
	s.saveErrMu.Lock()
	defer s.saveErrMu.Unlock()
	return s.lastSaveErr
}

// reshard starts an online reshard to n workers in the background. It
// returns false when one is already running.
func (s *Server) reshard(n int) bool {
	if !s.resharding.CompareAndSwap(false, true) {
		return false
	}
	s.reshardWG.Add(1)
	go func() {
		defer s.reshardWG.Done()
		defer s.resharding.Store(false)
		err := s.store().Reshard(context.Background(), n)
		s.reshardErrMu.Lock()
		s.lastReshardErr = err
		s.reshardErrMu.Unlock()
		if err != nil {
			s.cfg.Logf("p2kvs-server: reshard to %d workers failed: %v", n, err)
		} else {
			s.cfg.Logf("p2kvs-server: reshard to %d workers complete", n)
		}
	}()
	return true
}

func (s *Server) lastReshardError() error {
	s.reshardErrMu.Lock()
	defer s.reshardErrMu.Unlock()
	return s.lastReshardErr
}

// New builds a Server; call Serve or ListenAndServe to run it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		stats:      newServerStats(),
		conns:      make(map[*conn]struct{}),
		sem:        make(chan struct{}, cfg.MaxConns),
		drainCh:    make(chan struct{}),
		shutdownCh: make(chan struct{}),
		start:      time.Now(),
	}
	s.storeP.Store(cfg.Store)
	s.repl = newReplState(s)
	return s
}

// store returns the current serving store. Handlers call it once per
// command and use the returned pointer throughout, so a concurrent
// full-sync swap can at worst fail their in-flight command with
// ErrClosed — never dereference nil.
func (s *Server) store() *core.Store { return s.storeP.Load() }

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr {
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// DebugAddr reports the bound debug-HTTP address, or nil.
func (s *Server) DebugAddr() net.Addr {
	if s.debug == nil {
		return nil
	}
	return s.debug.lis.Addr()
}

// ShutdownSignal fires when a client issues the SHUTDOWN command. The
// process owner listens on it alongside OS signals and then calls
// Shutdown.
func (s *Server) ShutdownSignal() <-chan struct{} { return s.shutdownCh }

func (s *Server) signalShutdown() {
	s.sigOnce.Do(func() { close(s.shutdownCh) })
}

// ListenAndServe listens on cfg.Addr (and cfg.DebugAddr when set) and
// serves until Shutdown. It returns nil after a graceful shutdown.
func (s *Server) ListenAndServe() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Shutdown closes it. Each
// connection gets one goroutine; the MaxConns semaphore is acquired
// *before* Accept so a saturated server stops pulling from the listen
// backlog (kernel-level backpressure) instead of accepting and parking.
func (s *Server) Serve(lis net.Listener) error {
	s.lis = lis
	// Shutdown may have run before the listener was stored (it closes
	// s.lis, which was still nil); re-check so Accept cannot block forever.
	if s.draining.Load() {
		lis.Close()
		return nil
	}
	if s.cfg.DebugAddr != "" && s.debug == nil {
		d, err := startDebug(s, s.cfg.DebugAddr)
		if err != nil {
			lis.Close()
			return err
		}
		s.debug = d
	}
	if s.cfg.ReplicaOf != "" {
		if err := s.repl.startReplica(s.cfg.ReplicaOf); err != nil {
			lis.Close()
			return err
		}
	}
	s.cfg.Logf("p2kvs-server: serving on %s", lis.Addr())
	for {
		s.sem <- struct{}{}
		nc, err := lis.Accept()
		if err != nil {
			<-s.sem
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if s.draining.Load() {
			nc.Close()
			<-s.sem
			continue
		}
		s.stats.accepted.Add(1)
		s.stats.active.Add(1)
		c := newConn(s, nc)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.stats.active.Add(-1)
				s.connWG.Done()
				<-s.sem
			}()
			// Panic isolation: a bug triggered by one client's input costs
			// that client its connection, not the whole server. Registered
			// after the bookkeeping defer so the semaphore and counters are
			// still released on the panic path.
			defer func() {
				if r := recover(); r != nil {
					s.stats.panics.Add(1)
					s.cfg.Logf("p2kvs-server: panic serving %s (connection closed): %v", nc.RemoteAddr(), r)
					nc.Close()
				}
			}()
			c.serve()
		}()
	}
}

// Shutdown drains gracefully: stop accepting, let every connection
// finish the pipeline window it is processing (all its replies are
// written and flushed), close the connections, then close the store. The
// context bounds the connection drain; on expiry remaining connections
// are closed hard and their in-flight commands fail as the store shuts
// down. Safe to call once; later calls return the first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.downOnce.Do(func() { s.downErr = s.shutdown(ctx) })
	return s.downErr
}

func (s *Server) shutdown(ctx context.Context) error {
	s.draining.Store(true)
	close(s.drainCh)
	// Stop the replica manager first: it applies into the store that is
	// about to close, and its stream connection must not race the drain.
	s.repl.stopReplica()
	if s.lis != nil {
		s.lis.Close()
	}
	// Kick idle connections out of their blocking first read; busy ones
	// observe the draining flag after finishing their current window.
	s.mu.Lock()
	for c := range s.conns {
		c.beginDrain()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
	}
	if s.debug != nil {
		s.debug.close()
	}
	// A background save still writing its image must finish before the
	// store closes underneath it; likewise an in-flight reshard runs to
	// completion (or abort) so the committed topology is never torn by
	// the close.
	s.saveWG.Wait()
	s.reshardWG.Wait()
	s.cfg.Logf("p2kvs-server: drained, closing store")
	if err := s.store().Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}
