package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"p2kvs/internal/core"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
)

// startCheckpointServer boots a server over real LSM engines on a shared
// MemFS so BGSAVE has something checkpointable, with the backup set on
// the same in-memory filesystem.
func startCheckpointServer(t *testing.T, fs *vfs.MemFS) *testServer {
	t.Helper()
	return startTestServer(t, 2, nil, func(o *core.Options) {
		o.EngineFactory = func(id int, filter func(uint64) bool) (kv.Engine, error) {
			opts := lsm.RocksDBOptions(fs)
			opts.MemTableSize = 16 << 10
			return lsm.OpenWith(fmt.Sprintf("srv/inst-%02d", id), opts, lsm.OpenOptions{RecoverFilter: filter})
		}
		o.TxnFS = fs
		o.TxnDir = "srv/txn"
	}, Config{CheckpointDir: "bak", CheckpointFS: fs})
}

// waitSaved polls INFO until the background save commits (or fails) and
// returns the final INFO text.
func waitSaved(t *testing.T, c *client) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info := string(c.do(t, "INFO").Str)
		if strings.Contains(info, "store_checkpoint_in_progress:0") {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background save did not finish within 10s")
	return ""
}

func TestBgsaveLastsaveInfo(t *testing.T) {
	fs := vfs.NewMem()
	ts := startCheckpointServer(t, fs)
	c := dialTest(t, ts)

	for i := 0; i < 200; i++ {
		if rep := c.do(t, "SET", fmt.Sprintf("key-%03d", i), "v"); rep.IsError() {
			t.Fatalf("SET: %s", rep.Str)
		}
	}
	if n := c.do(t, "LASTSAVE"); n.Int != 0 {
		t.Fatalf("LASTSAVE before any save = %d", n.Int)
	}

	rep := c.do(t, "BGSAVE")
	if rep.IsError() || string(rep.Str) != "Background saving started" {
		t.Fatalf("BGSAVE reply = %q (err=%v)", rep.Str, rep.IsError())
	}
	info := waitSaved(t, c)
	if !strings.Contains(info, "store_checkpoints:1") {
		t.Fatalf("INFO after save missing store_checkpoints:1:\n%s", info)
	}
	if strings.Contains(info, "store_last_checkpoint_error") {
		t.Fatalf("INFO reports a save error:\n%s", info)
	}
	for _, counter := range []string{
		"store_checkpoint_barrier_ns:", "store_checkpoint_files_linked:",
		"store_checkpoint_files_copied:", "store_checkpoint_files_reused:",
		"store_checkpoint_bytes_copied:",
	} {
		if !strings.Contains(info, counter) {
			t.Fatalf("INFO missing %q:\n%s", counter, info)
		}
	}
	if n := c.do(t, "LASTSAVE"); n.Int == 0 {
		t.Fatal("LASTSAVE still 0 after a committed save")
	}
	if !fs.Exists("bak/" + "CHECKPOINT") {
		t.Fatal("no CHECKPOINT manifest in the backup set")
	}

	// A second BGSAVE into the same set is the incremental path.
	if rep := c.do(t, "BGSAVE"); rep.IsError() {
		t.Fatalf("second BGSAVE: %s", rep.Str)
	}
	if info := waitSaved(t, c); !strings.Contains(info, "store_checkpoints:2") {
		t.Fatalf("INFO after second save:\n%s", info)
	}
}

func TestBgsaveDisabledWithoutDir(t *testing.T) {
	ts := startTestServer(t, 1, nil, nil, Config{})
	c := dialTest(t, ts)
	rep := c.do(t, "BGSAVE")
	if !rep.IsError() || !strings.Contains(string(rep.Str), "BGSAVE disabled") {
		t.Fatalf("BGSAVE without checkpoint dir = %q", rep.Str)
	}
}

// TestBgsaveUnsupportedEngineSurfacesError: stub engines don't implement
// kv.Checkpointer, so the background save must fail — visibly, through
// INFO's store_last_checkpoint_error — rather than silently succeed.
func TestBgsaveUnsupportedEngineSurfacesError(t *testing.T) {
	ts := startTestServer(t, 1, nil, nil, Config{CheckpointDir: "bak", CheckpointFS: vfs.NewMem()})
	c := dialTest(t, ts)
	if rep := c.do(t, "BGSAVE"); rep.IsError() {
		t.Fatalf("BGSAVE start: %s", rep.Str)
	}
	info := waitSaved(t, c)
	if !strings.Contains(info, "store_last_checkpoint_error") {
		t.Fatalf("failed save not surfaced in INFO:\n%s", info)
	}
	if !strings.Contains(info, "store_checkpoints:0") {
		t.Fatalf("failed save still bumped the counter:\n%s", info)
	}
}
