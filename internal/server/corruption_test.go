package server_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"p2kvs/internal/core"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/server"
	"p2kvs/internal/vfs"
)

// TestCorruptionOverTheWire is the end-to-end integrity story as a client
// sees it: damage one SST byte under a live server and require (1) GET of
// a damaged key answers -CORRUPTION, never a wrong value, (2) SCRUB
// detects the flip and says so in its reply, and (3) INFO's # Robustness
// section reports the corruption and quarantine counters.
func TestCorruptionOverTheWire(t *testing.T) {
	fault := vfs.NewFault(vfs.NewMem())
	store, err := core.Open(coreOptsLSM(fault))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Store: store, CommandTimeout: 5 * time.Second})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	nc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rd, wr := server.NewReader(nc), server.NewWriter(nc)
	do := func(args ...string) server.Reply {
		t.Helper()
		bs := make([][]byte, len(args))
		for i, a := range args {
			bs[i] = []byte(a)
		}
		wr.WriteCommand(bs...)
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		rep, err := rd.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	for i := 0; i < 80; i++ {
		if rep := do("SET", fmt.Sprintf("key-%04d", i), fmt.Sprintf("value-%04d-xxxxxxxxxxxxxxxxxxxxxxxx", i)); string(rep.Str) != "OK" {
			t.Fatalf("SET: %v", rep)
		}
	}
	// Persist the memtable so the keys live in an SST the flip can reach.
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	// A clean scrub first: full coverage, nothing found.
	rep := do("SCRUB")
	if rep.Kind == '-' {
		t.Fatalf("clean SCRUB failed: %v", rep)
	}
	if !strings.Contains(string(rep.Str), "scrub_corruptions_found:0") {
		t.Fatalf("clean SCRUB reply: %q", rep.Str)
	}

	names, err := fault.List("w00")
	if err != nil {
		t.Fatal(err)
	}
	var sst string
	for _, n := range names {
		if strings.HasSuffix(n, ".sst") {
			sst = "w00/" + n
		}
	}
	if sst == "" {
		t.Fatalf("no SST after flush; files: %v", names)
	}
	if err := fault.CorruptAt(sst, 100); err != nil {
		t.Fatal(err)
	}

	// SCRUB over the wire is the first to see the damage — no foreground
	// read has touched it. It must detect, report and quarantine the file
	// (no RepairSource is configured, so no repair happens).
	rep = do("SCRUB")
	if rep.Kind == '-' {
		t.Fatalf("SCRUB after flip: %v", rep)
	}
	if !strings.Contains(string(rep.Str), "scrub_corruptions_found:") ||
		strings.Contains(string(rep.Str), "scrub_corruptions_found:0") {
		t.Fatalf("SCRUB did not report the flip: %q", rep.Str)
	}

	// With the file quarantined, its keys answer -CORRUPTION — scanning
	// every key also proves no read returns a silently wrong value or a
	// silent not-found.
	corrupt := 0
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("key-%04d", i)
		rep := do("GET", k)
		switch {
		case rep.Kind == '-':
			if !strings.HasPrefix(string(rep.Str), "CORRUPTION") {
				t.Fatalf("GET %s error class %q, want CORRUPTION", k, rep.Str)
			}
			corrupt++
		case rep.Nil:
			t.Fatalf("GET %s silently lost the key", k)
		default:
			if want := fmt.Sprintf("value-%04d-xxxxxxxxxxxxxxxxxxxxxxxx", i); string(rep.Str) != want {
				t.Fatalf("GET %s = %q, want %q — silently wrong value", k, rep.Str, want)
			}
		}
	}
	if corrupt == 0 {
		t.Fatal("no GET answered -CORRUPTION after quarantine")
	}

	// INFO carries the robustness counters for monitoring.
	info := string(do("INFO").Str)
	for _, want := range []string{"store_corruption_events:", "store_quarantined_files:", "store_last_corruption:", "corruption_replies:"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
	if strings.Contains(info, "store_corruption_events:0\r\n") {
		t.Fatalf("INFO reports zero corruption events after damage:\n%s", info)
	}
	if strings.Contains(info, "store_quarantined_files:0\r\n") {
		t.Fatalf("INFO reports zero quarantined files after damage:\n%s", info)
	}
	if strings.Contains(info, "corruption_replies:0\r\n") {
		t.Fatalf("INFO reports zero -CORRUPTION replies after serving them:\n%s", info)
	}
}

// coreOptsLSM builds a single-worker core store over real LSM engines on
// fs — small memtable so Flush materializes an SST for the flip to hit.
func coreOptsLSM(fs vfs.FS) core.Options {
	copts := core.DefaultOptions(func(id int, _ func(uint64) bool) (kv.Engine, error) {
		o := lsm.RocksDBOptions(fs)
		o.MemTableSize = 64 << 10
		return lsm.Open(fmt.Sprintf("w%02d", id), o)
	})
	copts.Workers = 1
	copts.TxnFS = fs
	copts.TxnDir = "txn"
	return copts
}
