package server_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2kvs"
	"p2kvs/internal/server"
)

// respClient is a minimal single-connection RESP client for this file.
type respClient struct {
	nc net.Conn
	rd *server.Reader
	wr *server.Writer
}

func dialResp(t *testing.T, addr string) *respClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &respClient{nc: nc, rd: server.NewReader(nc), wr: server.NewWriter(nc)}
}

func (c *respClient) do(args ...string) (server.Reply, error) {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	c.wr.WriteCommand(bs...)
	if err := c.wr.Flush(); err != nil {
		return server.Reply{}, err
	}
	return c.rd.ReadReply()
}

func (c *respClient) must(t *testing.T, args ...string) server.Reply {
	t.Helper()
	rep, err := c.do(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return rep
}

// TestReshardUnderLoad drives GET/SET/MGET traffic through a live
// RESHARD to one more worker: no request may fail, reads stay
// read-your-writes across the cutover, and INFO reports the completed
// reshard at the new worker count.
func TestReshardUnderLoad(t *testing.T) {
	store, err := p2kvs.Open(p2kvs.Options{
		Dir:      t.TempDir(),
		Workers:  3,
		InMemory: true,
		Elastic:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Store: store, CommandTimeout: 10 * time.Second})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	defer func() {
		srv.Shutdown(t.Context())
		<-serveDone
	}()
	addr := lis.Addr().String()

	ctl := dialResp(t, addr)
	const preload = 500
	for i := 0; i < preload; i++ {
		if rep := ctl.must(t, "SET", fmt.Sprintf("key-%04d", i), fmt.Sprintf("v%d", i)); string(rep.Str) != "OK" {
			t.Fatalf("preload SET: %v", rep)
		}
	}

	// Background load: each goroutine owns one connection and one hot
	// key; every SET is immediately read back (read-your-writes must
	// hold through the cutover), plus an MGET over preloaded keys.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var loadErr atomic.Value
	fail := func(format string, args ...any) {
		loadErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	for g := 0; g < 4; g++ {
		cl := dialResp(t, addr)
		wg.Add(1)
		go func(g int, cl *respClient) {
			defer wg.Done()
			key := fmt.Sprintf("hot-%d", g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				val := fmt.Sprintf("%d", i)
				rep, err := cl.do("SET", key, val)
				if err != nil || rep.Kind == '-' {
					fail("SET %s during reshard: %v %v", key, rep, err)
					return
				}
				rep, err = cl.do("GET", key)
				if err != nil || rep.Kind == '-' {
					fail("GET %s during reshard: %v %v", key, rep, err)
					return
				}
				if string(rep.Str) != val {
					fail("read-your-writes violated on %s: wrote %q, read %q", key, val, rep.Str)
					return
				}
				k1 := fmt.Sprintf("key-%04d", (g*131+i)%preload)
				k2 := fmt.Sprintf("key-%04d", (g*137+i*3)%preload)
				rep, err = cl.do("MGET", k1, k2)
				if err != nil || rep.Kind == '-' || len(rep.Elems) != 2 {
					fail("MGET during reshard: %v %v", rep, err)
					return
				}
				for j, k := range []string{k1, k2} {
					var want string
					fmt.Sscanf(k, "key-%s", &want)
					_ = want
					if rep.Elems[j].Nil {
						fail("MGET lost preloaded key %s during reshard", k)
						return
					}
				}
			}
		}(g, cl)
	}

	if rep := ctl.must(t, "RESHARD", "4"); !strings.Contains(string(rep.Str), "started") {
		t.Fatalf("RESHARD 4: %v", rep)
	}
	// Poll RESHARD STATUS until the background run commits.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rep := ctl.must(t, "RESHARD", "STATUS")
		txt := string(rep.Str)
		if strings.Contains(txt, "reshard_completed:1") && strings.Contains(txt, "reshard_in_progress:0") {
			break
		}
		if strings.Contains(txt, "reshard_aborted:1") {
			t.Fatalf("reshard aborted: %s", txt)
		}
		if time.Now().After(deadline) {
			t.Fatalf("reshard did not complete: %s", txt)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if msg := loadErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	info := string(ctl.must(t, "INFO").Str)
	for _, want := range []string{"workers:4", "reshard_completed:1", "reshard_state:done", "reshard_epoch:1"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
	// Every preloaded key survived the move.
	for i := 0; i < preload; i++ {
		k := fmt.Sprintf("key-%04d", i)
		rep := ctl.must(t, "GET", k)
		if string(rep.Str) != fmt.Sprintf("v%d", i) {
			t.Fatalf("GET %s after reshard: %v", k, rep)
		}
	}
	// Idempotent target: resharding to the current count is a no-op OK.
	if rep := ctl.must(t, "RESHARD", "4"); rep.Kind == '-' {
		t.Fatalf("RESHARD to current count: %v", rep)
	}
	// Bad arguments are rejected without touching the store.
	if rep := ctl.must(t, "RESHARD", "zero"); rep.Kind != '-' {
		t.Fatalf("RESHARD zero: %v", rep)
	}
	if rep := ctl.must(t, "RESHARD", "0"); rep.Kind != '-' {
		t.Fatalf("RESHARD 0: %v", rep)
	}
}

// TestReshardNotElastic: a server over a fixed-hash store refuses
// RESHARD with a clear error instead of a background failure.
func TestReshardNotElastic(t *testing.T) {
	store, err := p2kvs.Open(p2kvs.Options{Dir: t.TempDir(), Workers: 2, InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Store: store})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	defer func() {
		srv.Shutdown(t.Context())
		<-serveDone
	}()
	cl := dialResp(t, lis.Addr().String())
	rep := cl.must(t, "RESHARD", "3")
	if rep.Kind != '-' || !strings.Contains(string(rep.Str), "unsupported") {
		t.Fatalf("RESHARD on fixed store: %v", rep)
	}
	if rep := cl.must(t, "RESHARD", "STATUS"); rep.Kind == '-' {
		t.Fatalf("RESHARD STATUS should work everywhere: %v", rep)
	}
}
