package server

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"p2kvs/internal/core"
	"p2kvs/internal/histogram"
)

// debugListener is the optional HTTP side-channel: JSON metrics for
// scrapers, expvar, and pprof for live profiling.
type debugListener struct {
	lis net.Listener
	srv *http.Server
}

// metricsPayload is the /metrics JSON schema.
type metricsPayload struct {
	Server   serverMetrics                `json:"server"`
	Commands map[string]histogram.Summary `json:"commands"`
	Store    core.StatsSnapshot           `json:"store"`
}

type serverMetrics struct {
	UptimeSeconds  int64 `json:"uptime_seconds"`
	Accepted       int64 `json:"connections_accepted"`
	Active         int64 `json:"connections_active"`
	Commands       int64 `json:"commands"`
	Pipelines      int64 `json:"pipelines"`
	CoalescedSets  int64 `json:"coalesced_set_ops"`
	CoalescedGets  int64 `json:"coalesced_get_ops"`
	Loadshed       int64 `json:"loadshed_replies"`
	Timeouts       int64 `json:"timeout_replies"`
	Unknown        int64 `json:"unknown_commands"`
	ProtocolErrors int64 `json:"protocol_errors"`
}

func (s *Server) metricsSnapshot() metricsPayload {
	cmds := make(map[string]histogram.Summary, len(latCommands))
	for _, name := range latCommands {
		if sum := s.stats.lat[name].Summary(); sum.Count > 0 {
			cmds[name] = sum
		}
	}
	return metricsPayload{
		Server: serverMetrics{
			UptimeSeconds:  int64(time.Since(s.start).Seconds()),
			Accepted:       s.stats.accepted.Load(),
			Active:         s.stats.active.Load(),
			Commands:       s.stats.commands.Load(),
			Pipelines:      s.stats.pipelines.Load(),
			CoalescedSets:  s.stats.coalescedSets.Load(),
			CoalescedGets:  s.stats.coalescedGets.Load(),
			Loadshed:       s.stats.loadshed.Load(),
			Timeouts:       s.stats.timeouts.Load(),
			Unknown:        s.stats.unknown.Load(),
			ProtocolErrors: s.stats.protoErrors.Load(),
		},
		Commands: cmds,
		Store:    s.store().StatsSnapshot(),
	}
}

func startDebug(s *Server, addr string) (*debugListener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.metricsSnapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &debugListener{lis: lis, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(lis)
	return d, nil
}

func (d *debugListener) close() {
	_ = d.srv.Close()
}
