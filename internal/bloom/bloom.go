// Package bloom implements the per-SSTable bloom filters that keep LSM
// point lookups from touching every level (Figure 2's read path ❷). It
// follows the LevelDB/RocksDB "double hashing" construction: one 32-bit
// hash, k probes derived by repeatedly adding a rotated delta.
package bloom

// Filter builds and queries a bloom filter.
type Filter struct {
	bitsPerKey int
	k          int
}

// New creates a filter policy with the given bits-per-key budget
// (10 bits/key ≈ 1% false-positive rate, the RocksDB default).
func New(bitsPerKey int) *Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := int(float64(bitsPerKey) * 0.69) // ln(2) * bits/key
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bitsPerKey: bitsPerKey, k: k}
}

// Build returns the encoded filter block for the given keys. The last
// byte stores k so readers are self-describing.
func (f *Filter) Build(keys [][]byte) []byte {
	bits := len(keys) * f.bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nbytes := (bits + 7) / 8
	bits = nbytes * 8
	buf := make([]byte, nbytes+1)
	buf[nbytes] = byte(f.k)
	for _, key := range keys {
		h := Hash(key)
		delta := h>>17 | h<<15
		for i := 0; i < f.k; i++ {
			pos := h % uint32(bits)
			buf[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return buf
}

// MayContain reports whether key is possibly in the filter encoded by
// Build. False means definitely absent.
func MayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return true // degenerate filters match everything
	}
	nbytes := len(filter) - 1
	bits := uint32(nbytes * 8)
	k := int(filter[nbytes])
	if k > 30 {
		return true // reserved for future encodings
	}
	h := Hash(key)
	delta := h>>17 | h<<15
	for i := 0; i < k; i++ {
		pos := h % bits
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Hash is the 32-bit Murmur-like hash LevelDB uses for its filters; it is
// exported because the key-space partitioner reuses it.
func Hash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	for ; len(data) >= 4; data = data[4:] {
		h += uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		h *= m
		h ^= h >> 16
	}
	switch len(data) {
	case 3:
		h += uint32(data[2]) << 16
		fallthrough
	case 2:
		h += uint32(data[1]) << 8
		fallthrough
	case 1:
		h += uint32(data[0])
		h *= m
		h ^= h >> 24
	}
	return h
}
