package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(10)
	var keys [][]byte
	for i := 0; i < 2000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%d", i)))
	}
	filter := f.Build(keys)
	for _, k := range keys {
		if !MayContain(filter, k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10)
	var keys [][]byte
	for i := 0; i < 10000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("in-%d", i)))
	}
	filter := f.Build(keys)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if MayContain(filter, []byte(fmt.Sprintf("out-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want <= 3%% at 10 bits/key", rate)
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	fn := func(keys [][]byte, bits uint8) bool {
		f := New(int(bits%20) + 1)
		filter := f.Build(keys)
		for _, k := range keys {
			if !MayContain(filter, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	f := New(10)
	filter := f.Build(nil)
	// Empty filter: probes may return either way but must not panic.
	MayContain(filter, []byte("x"))
	if !MayContain(nil, []byte("x")) {
		t.Fatal("nil filter must match everything (fail open)")
	}
	if !MayContain([]byte{0}, []byte("x")) {
		t.Fatal("tiny filter must fail open")
	}
}

func TestHashDistribution(t *testing.T) {
	// Sanity: hash differs across small edits.
	h1 := Hash([]byte("abc"))
	h2 := Hash([]byte("abd"))
	h3 := Hash([]byte("abc "))
	if h1 == h2 || h1 == h3 {
		t.Fatal("hash collisions on trivial edits")
	}
	if Hash(nil) != Hash([]byte{}) {
		t.Fatal("nil and empty must hash equal")
	}
}

func TestClampedParams(t *testing.T) {
	if f := New(0); f.k < 1 {
		t.Fatal("k must clamp to >= 1")
	}
	if f := New(1000); f.k > 30 {
		t.Fatal("k must clamp to <= 30")
	}
}
