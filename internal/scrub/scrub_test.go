package scrub

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"p2kvs/internal/kv"
)

func TestLimiterNilNeverBlocks(t *testing.T) {
	var l *Limiter
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // even a dead context: nil limiter returns immediately
	if err := l.WaitN(ctx, 1<<30); err != nil {
		t.Fatal(err)
	}
	if lim := NewLimiter(0); lim != nil {
		t.Fatal("NewLimiter(0) must return the nil (unthrottled) limiter")
	}
	if lim := NewLimiter(-5); lim != nil {
		t.Fatal("NewLimiter(-5) must return the nil (unthrottled) limiter")
	}
}

func TestLimiterPacesToRate(t *testing.T) {
	// 64 KiB/s budget, 16 KiB charges: the initial full bucket covers the
	// first 64 KiB; the next 32 KiB must wait roughly half a second.
	lim := NewLimiter(64 << 10)
	start := time.Now()
	for i := 0; i < 6; i++ {
		if err := lim.WaitN(context.Background(), 16<<10); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 200*time.Millisecond {
		t.Fatalf("6x16KiB at 64KiB/s finished in %v, want >= ~500ms of pacing", elapsed)
	}
}

func TestLimiterOversizeRequestDoesNotDeadlock(t *testing.T) {
	// A request larger than one second of budget is charged whole once the
	// bucket is full, going negative instead of waiting forever.
	lim := NewLimiter(1 << 10)
	done := make(chan error, 1)
	go func() { done <- lim.WaitN(context.Background(), 10<<10) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oversize WaitN deadlocked")
	}
}

func TestLimiterCtxCancel(t *testing.T) {
	lim := NewLimiter(1024)
	lim.WaitN(context.Background(), 1024) // drain the bucket
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- lim.WaitN(ctx, 1024) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled WaitN never returned")
	}
}

func TestRunnerNilSafe(t *testing.T) {
	r := NewRunner(0, 0, nil)
	if r != nil {
		t.Fatal("interval <= 0 must return the nil runner")
	}
	if st := r.Status(); st != (Status{}) {
		t.Fatalf("nil Status = %+v, want zero", st)
	}
	r.Close() // must not panic
}

func TestRunnerPassesAndStatus(t *testing.T) {
	var calls atomic.Int64
	r := NewRunner(10*time.Millisecond, 0, func(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error) {
		calls.Add(1)
		return kv.ScrubResult{FilesScanned: 3, BytesScanned: 4096}, nil
	})
	defer r.Close()
	deadline := time.Now().Add(5 * time.Second)
	for r.Status().Passes < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("runner completed %d passes, want >= 2", r.Status().Passes)
		}
		time.Sleep(time.Millisecond)
	}
	st := r.Status()
	if st.Result.FilesScanned != 3 || st.Result.BytesScanned != 4096 {
		t.Fatalf("Status.Result = %+v", st.Result)
	}
	if st.FinishedUnix == 0 || st.Err != nil {
		t.Fatalf("Status = %+v, want finished cleanly", st)
	}
	if calls.Load() < 2 {
		t.Fatalf("scrub fn called %d times", calls.Load())
	}
}

func TestRunnerErrorDoesNotCountAsPass(t *testing.T) {
	bad := errors.New("device fell over")
	var calls atomic.Int64
	r := NewRunner(5*time.Millisecond, 0, func(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error) {
		calls.Add(1)
		return kv.ScrubResult{}, bad
	})
	defer r.Close()
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("scrub fn never ran twice")
		}
		time.Sleep(time.Millisecond)
	}
	st := r.Status()
	if st.Passes != 0 {
		t.Fatalf("Passes = %d after persistent failure, want 0", st.Passes)
	}
	if !errors.Is(st.Err, bad) {
		t.Fatalf("Status.Err = %v, want the scrub error", st.Err)
	}
}

func TestRunnerCloseAbortsInFlightPass(t *testing.T) {
	started := make(chan struct{})
	r := NewRunner(time.Millisecond, 0, func(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // simulate a pass that only ends when cancelled
		return kv.ScrubResult{}, ctx.Err()
	})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("pass never started")
	}
	done := make(chan struct{})
	go func() { r.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not abort the in-flight pass")
	}
	r.Close() // second Close is a no-op
}
