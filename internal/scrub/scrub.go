// Package scrub provides the proactive at-rest integrity verification
// subsystem: a bytes/second token-bucket rate limiter that bounds the
// device bandwidth background verification may consume, and a Runner that
// walks every worker's engine on a cadence. Detection and quarantine live
// in the engines (kv.Scrubber); this package only paces and schedules them
// — the same separation production scrubbers use so verification IO never
// competes unboundedly with foreground reads.
package scrub

import (
	"context"
	"sync"
	"time"

	"p2kvs/internal/kv"
)

// Limiter is a bytes/sec token bucket implementing kv.RateLimiter. The
// bucket holds at most one second of budget, so a scrub that slept through
// an idle stretch cannot burst arbitrarily far beyond the configured rate.
type Limiter struct {
	mu     sync.Mutex
	rate   float64   // tokens (bytes) per second
	tokens float64   // current balance, <= rate
	last   time.Time // last refill
}

// NewLimiter returns a limiter granting rate bytes per second; rate <= 0
// returns nil, the unthrottled limiter every consumer accepts.
func NewLimiter(rate int64) *Limiter {
	if rate <= 0 {
		return nil
	}
	return &Limiter{rate: float64(rate), tokens: float64(rate), last: time.Now()}
}

// WaitN implements kv.RateLimiter: it blocks until n bytes of budget are
// available or ctx is done. A nil *Limiter never blocks. Requests larger
// than one second of budget are paid in full by waiting multiple refill
// windows — they do not deadlock.
func (l *Limiter) WaitN(ctx context.Context, n int) error {
	if l == nil || n <= 0 {
		return nil
	}
	need := float64(n)
	for {
		l.mu.Lock()
		now := time.Now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.rate {
			l.tokens = l.rate
		}
		l.last = now
		if l.tokens >= need || l.tokens >= l.rate {
			// Either the budget covers the request, or the bucket is full
			// and can never cover it in one window: charge it whole (the
			// balance goes negative, delaying the next request) so large
			// files pay their true cost without stalling forever.
			l.tokens -= need
			l.mu.Unlock()
			return nil
		}
		wait := time.Duration((need - l.tokens) / l.rate * float64(time.Second))
		l.mu.Unlock()
		if wait > time.Second {
			wait = time.Second
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// Status is the last-scrub report a Runner (or a manual scrub) publishes.
type Status struct {
	// Result accumulates the most recent completed pass.
	Result kv.ScrubResult
	// StartedUnix / FinishedUnix frame the most recent pass (0 = never).
	StartedUnix  int64
	FinishedUnix int64
	// Err is the infrastructure error that aborted the last pass, nil on
	// clean completion (finding corruption is a clean completion).
	Err error
	// Passes counts completed scrub passes over the runner's lifetime.
	Passes int64
}

// Runner drives periodic scrubs of a store in the background. The scrub
// function it is given fans out across workers (each worker verifies its
// own instance — the paper's per-instance parallelism applied to
// verification); the runner adds cadence, rate limiting and last-status
// tracking.
type Runner struct {
	interval time.Duration
	lim      *Limiter
	scrub    func(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error)

	mu     sync.Mutex
	status Status

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewRunner starts a background scrub loop running scrub every interval,
// reading through a NewLimiter(rate) token bucket. interval <= 0 returns a
// nil Runner (no background scrubbing); the nil Runner's methods are safe.
func NewRunner(interval time.Duration, rate int64, scrub func(ctx context.Context, lim kv.RateLimiter) (kv.ScrubResult, error)) *Runner {
	if interval <= 0 {
		return nil
	}
	r := &Runner{
		interval: interval,
		lim:      NewLimiter(rate),
		scrub:    scrub,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go r.loop()
	return r
}

func (r *Runner) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			select {
			case <-r.stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		start := time.Now()
		res, err := r.scrub(ctx, r.lim)
		cancel()
		r.mu.Lock()
		r.status.Result = res
		r.status.StartedUnix = start.Unix()
		r.status.FinishedUnix = time.Now().Unix()
		r.status.Err = err
		if err == nil {
			r.status.Passes++
		}
		r.mu.Unlock()
	}
}

// Status reports the most recent pass. Safe on a nil Runner.
func (r *Runner) Status() Status {
	if r == nil {
		return Status{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Close stops the loop and waits for an in-flight pass to abort. Safe on a
// nil Runner and safe to call twice.
func (r *Runner) Close() {
	if r == nil {
		return
	}
	r.once.Do(func() { close(r.stop) })
	<-r.done
}
