package bench

import (
	"fmt"
	"sort"
)

// Runner is one experiment entry point.
type Runner func(Env) (*Table, error)

// Experiments maps experiment IDs (cmd/p2kvs-bench subcommands) to
// runners; the per-experiment index in DESIGN.md mirrors this table.
var Experiments = map[string]Runner{
	"fig1":               RunFig1,
	"fig4":               RunFig4,
	"fig5":               RunFig5,
	"fig6":               RunFig6,
	"fig7":               RunFig7,
	"fig8":               RunFig8,
	"fig12":              RunFig12,
	"table2":             RunTable2,
	"fig13":              RunFig13,
	"fig14":              RunFig14,
	"fig15":              RunFig15,
	"fig16":              RunFig16,
	"fig17":              RunFig17,
	"fig18":              RunFig18,
	"fig20":              RunFig20,
	"fig21":              RunFig21,
	"fig22":              RunFig22,
	"fig23":              RunFig23,
	"ablation-batch":     RunAblationBatch,
	"ablation-cache":     RunAblationCache,
	"ablation-partition": RunAblationPartition,
	"ablation-scan":      RunAblationScan,
}

// Names returns the experiment IDs in stable order.
func Names() []string {
	out := make([]string, 0, len(Experiments))
	for name := range Experiments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, e Env) (*Table, error) {
	r, ok := Experiments[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Names())
	}
	return r(e)
}
