package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"p2kvs/internal/core"
	"p2kvs/internal/device"
	"p2kvs/internal/histogram"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/metrics"
	"p2kvs/internal/vfs"
	"p2kvs/internal/workload"
)

// asyncFill drives the store's asynchronous write interface from
// `threads` submitters (the paper enables the async interface for peak
// write measurements, §5.1), waiting for all callbacks.
func asyncFill(e Env, s *core.Store, threads int, scale float64, valueSize int) (Res, error) {
	choosers := perThreadUniform(threads, e.Keys)
	var pending sync.WaitGroup
	start := time.Now()
	res, err := e.measure(threads, scale, func(tid, _ int) error {
		idx := choosers[tid].Next()
		pending.Add(1)
		return s.PutAsync(workload.Key(idx), workload.Value(idx, valueSize), func(error) {
			pending.Done()
		})
	})
	// Throughput counts completions, not submissions: the wall clock
	// runs until every callback fired.
	pending.Wait()
	res.Wall = time.Since(start)
	if res.Wall > 0 {
		res.SimQPS = float64(res.Ops) * scale / res.Wall.Seconds()
	}
	return res, err
}

// RunFig12 reproduces Figure 12: random-write throughput, IO
// amplification and bandwidth utilization for RocksDB, PebblesDB,
// p2KVS-4 and p2KVS-8 under 16 user threads. Expected shape: p2KVS-8 >
// p2KVS-4 > RocksDB in QPS; p2KVS-8 has the lowest IO amplification
// (wider, shallower tree); p2KVS drives far higher bandwidth.
func RunFig12(e Env) (*Table, error) {
	e = e.WithDefaults()
	const threads = 16
	tbl := NewTable("Figure 12: random write, 16 user threads (NVMe, 128B)",
		"system", "simQPS", "IO amplification", "bw util %")

	type cfg struct {
		name string
		run  func() (Res, device.Stats, float64, int64, error)
	}
	kvBytes := func(p lsm.Perf) int64 { return p.UserBytes }
	configs := []cfg{
		{"RocksDB", func() (Res, device.Stats, float64, int64, error) {
			fs, scale := newDevFS(device.NVMe)
			db, err := openRocks(fs, "db")
			if err != nil {
				return Res{}, device.Stats{}, 0, 0, err
			}
			defer db.Close()
			choosers := perThreadUniform(threads, e.Keys)
			res, err := e.measure(threads, scale, func(tid, _ int) error {
				idx := choosers[tid].Next()
				return db.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
			})
			return res, fs.Device().Stats(), scale, kvBytes(db.Perf()), err
		}},
		{"PebblesDB", func() (Res, device.Stats, float64, int64, error) {
			fs, scale := newDevFS(device.NVMe)
			db, err := openPebbles(fs, "db")
			if err != nil {
				return Res{}, device.Stats{}, 0, 0, err
			}
			defer db.Close()
			choosers := perThreadUniform(threads, e.Keys)
			res, err := e.measure(threads, scale, func(tid, _ int) error {
				idx := choosers[tid].Next()
				return db.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
			})
			return res, fs.Device().Stats(), scale, kvBytes(db.Perf()), err
		}},
	}
	for _, workers := range []int{4, 8} {
		w := workers
		configs = append(configs, cfg{fmt.Sprintf("p2KVS-%d", w), func() (Res, device.Stats, float64, int64, error) {
			fs, scale := newDevFS(device.NVMe)
			s, err := openP2(fs, "p2", w, true, lsm.RocksDBOptions, nil)
			if err != nil {
				return Res{}, device.Stats{}, 0, 0, err
			}
			defer s.Close()
			res, err := asyncFill(e, s, threads, scale, e.ValueSize)
			var user int64
			for i := 0; i < w; i++ {
				user += s.Engine(i).(*lsm.DB).Perf().UserBytes
			}
			return res, fs.Device().Stats(), scale, user, err
		}})
	}

	for _, c := range configs {
		res, st, scale, userBytes, err := c.run()
		if err != nil {
			return nil, err
		}
		amp := 0.0
		if userBytes > 0 {
			amp = float64(st.WrittenBytes) / float64(userBytes)
		}
		simSec := res.Wall.Seconds() / scale
		tbl.Add(c.name, res.SimQPS, amp, 100*writeUtilization(st, device.NVMe, simSec))
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunTable2 reproduces Table 2: memory and (virtual) CPU usage under the
// random-write workload. Memory is engine-reported structure memory plus
// Go heap delta; CPU is metered worker busy-share in core-equivalents.
func RunTable2(e Env) (*Table, error) {
	e = e.WithDefaults()
	const threads = 16
	tbl := NewTable("Table 2: memory and CPU under random writes",
		"system", "mem (MB)", "CPU (core-%)")

	heapNow := func() float64 {
		var m runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc) / 1e6
	}

	// RocksDB single instance: user threads each occupy ~a core.
	{
		fs, scale := newDevFS(device.NVMe)
		base := heapNow()
		db, err := openRocks(fs, "db")
		if err != nil {
			return nil, err
		}
		g := metrics.NewGroup()
		meters := make([]*metrics.Meter, threads)
		for i := range meters {
			meters[i] = g.Meter(fmt.Sprintf("user-%d", i))
		}
		choosers := perThreadUniform(threads, e.Keys)
		if _, err := e.measure(threads, scale, func(tid, _ int) error {
			meters[tid].Busy()
			defer meters[tid].Idle()
			idx := choosers[tid].Next()
			return db.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
		}); err != nil {
			db.Close()
			return nil, err
		}
		_, cores := g.Snapshot()
		mem := heapNow() - base
		db.Close()
		tbl.Add("RocksDB (16 user threads)", mem, 100*cores)
	}
	// p2KVS-4 and p2KVS-8: workers busy, user threads asleep.
	for _, workers := range []int{4, 8} {
		fs, scale := newDevFS(device.NVMe)
		base := heapNow()
		g := metrics.NewGroup()
		s, err := openP2(fs, "p2", workers, true, lsm.RocksDBOptions, g)
		if err != nil {
			return nil, err
		}
		if _, err := asyncFill(e, s, threads, scale, e.ValueSize); err != nil {
			s.Close()
			return nil, err
		}
		_, cores := g.Snapshot()
		mem := heapNow() - base
		s.Close()
		tbl.Add(fmt.Sprintf("p2KVS-%d", workers), mem, 100*cores)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig13 reproduces Figure 13: average and p99 latency as a function
// of offered load (open loop) for RocksDB, RocksDB+OBM (p2KVS with one
// worker) and p2KVS-8. Expected shape: all systems track the offered
// rate at low intensity; RocksDB's latency blows up first; p2KVS-8
// sustains several times higher intensity at bounded tails.
func RunFig13(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 13: latency vs request intensity (open loop, NVMe, 128B)",
		"intensity (sim KQPS)", "system", "avg lat (sim ms)", "p99 lat (sim ms)")

	type sys struct {
		name    string
		workers int
		obm     bool
	}
	systems := []sys{{"RocksDB", 1, false}, {"RocksDB+OBM", 1, true}, {"p2KVS-8", 8, true}}
	intensities := []float64{50_000, 100_000, 200_000, 400_000}
	if e.Quick {
		intensities = []float64{50_000, 200_000}
	}
	for _, intensity := range intensities {
		for _, sy := range systems {
			fs, scale := newDevFS(device.NVMe)
			s, err := openP2(fs, "p2", sy.workers, sy.obm, lsm.RocksDBOptions, nil)
			if err != nil {
				return nil, err
			}
			var h histogram.H
			var pending sync.WaitGroup
			ch := workload.NewUniform(uint64(e.Keys), 1)
			// Open loop: one pacer submits at the target *simulated*
			// rate, i.e. realRate = intensity/scale, in 5ms ticks.
			realRate := intensity / scale
			tick := 5 * time.Millisecond
			perTick := int(realRate * tick.Seconds())
			if perTick < 1 {
				perTick = 1
			}
			deadline := time.Now().Add(e.Budget)
			overloaded := false
			for time.Now().Before(deadline) {
				tickStart := time.Now()
				for j := 0; j < perTick; j++ {
					idx := ch.Next()
					submitted := time.Now()
					pending.Add(1)
					err := s.PutAsync(workload.Key(idx), workload.Value(idx, e.ValueSize), func(error) {
						h.Record(time.Since(submitted))
						pending.Done()
					})
					if err != nil {
						pending.Done()
						s.Close()
						return nil, err
					}
				}
				sleep := tick - time.Since(tickStart)
				if sleep > 0 {
					time.Sleep(sleep)
				} else {
					overloaded = true
				}
			}
			pending.Wait()
			s.Close()
			label := sy.name
			if overloaded {
				label += " (saturated)"
			}
			tbl.Add(fmt.Sprintf("%.0f", intensity/1000), label,
				float64(h.Mean().Microseconds())/scale/1000,
				float64(h.Quantile(0.99).Microseconds())/scale/1000)
		}
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig14 reproduces Figure 14: point-query throughput with and without
// OBM as client threads grow. Expected shape: without OBM p2KVS tracks
// RocksDB; with OBM (multiget batching) p2KVS pulls ahead as concurrency
// rises.
func RunFig14(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 14: GET throughput (NVMe, 128B, preloaded)",
		"threads", "RocksDB", "p2KVS-8 no OBM", "p2KVS-8 OBM")
	threadCounts := []int{1, 4, 8, 16, 32}
	if e.Quick {
		threadCounts = []int{1, 8}
	}
	for _, threads := range threadCounts {
		row := []interface{}{threads}
		// RocksDB direct.
		{
			mem := vfs.NewMem()
			loadDB, err := openRocks(device.WrapFS(mem, device.New(device.Null, 1)), "db")
			if err != nil {
				return nil, err
			}
			if err := preloadFast(loadDB, e.Keys, e.ValueSize); err != nil {
				return nil, err
			}
			loadDB.Close()
			scale := scaleFor(device.NVMe)
			db, err := openRocks(device.WrapFS(mem, device.New(device.NVMe, scale)), "db")
			if err != nil {
				return nil, err
			}
			choosers := perThreadUniform(threads, e.Keys)
			res, err := e.measure(threads, scale, func(tid, _ int) error {
				_, err := db.Get(workload.Key(choosers[tid].Next()))
				if err == kv.ErrNotFound {
					err = nil
				}
				return err
			})
			db.Close()
			if err != nil {
				return nil, err
			}
			row = append(row, res.SimQPS)
		}
		for _, obm := range []bool{false, true} {
			mem := vfs.NewMem()
			loadS, err := openP2(device.WrapFS(mem, device.New(device.Null, 1)), "p2", 8, true, lsm.RocksDBOptions, nil)
			if err != nil {
				return nil, err
			}
			if err := preloadFast(loadS, e.Keys, e.ValueSize); err != nil {
				return nil, err
			}
			loadS.Close()
			scale := scaleFor(device.NVMe)
			s, err := openP2(device.WrapFS(mem, device.New(device.NVMe, scale)), "p2", 8, obm, lsm.RocksDBOptions, nil)
			if err != nil {
				return nil, err
			}
			choosers := perThreadUniform(threads, e.Keys)
			res, err := e.measure(threads, scale, func(tid, _ int) error {
				_, err := s.Get(workload.Key(choosers[tid].Next()))
				if err == kv.ErrNotFound {
					err = nil
				}
				return err
			})
			s.Close()
			if err != nil {
				return nil, err
			}
			row = append(row, res.SimQPS)
		}
		tbl.Add(row...)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig15 reproduces Figure 15: RANGE and SCAN throughput versus scan
// size, single user thread, p2KVS-8 vs RocksDB. Expected shape: p2KVS
// wins on RANGE (parallel disjoint sub-ranges) and on short SCANs; the
// gap closes at large scan sizes when read amplification saturates the
// device.
func RunFig15(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 15: RANGE / SCAN queries per second vs scan size (1 thread)",
		"scan size", "RocksDB RANGE", "p2KVS RANGE", "RocksDB SCAN", "p2KVS SCAN")
	sizes := []int{10, 100, 1000}
	if e.Quick {
		sizes = []int{10, 100}
	}

	// Preload both systems on null devices, then re-open on NVMe.
	memR := vfs.NewMem()
	loadDB, err := openRocks(device.WrapFS(memR, device.New(device.Null, 1)), "db")
	if err != nil {
		return nil, err
	}
	if err := preloadFast(loadDB, e.Keys, e.ValueSize); err != nil {
		return nil, err
	}
	loadDB.Close()
	scale := scaleFor(device.NVMe)
	db, err := openRocks(device.WrapFS(memR, device.New(device.NVMe, scale)), "db")
	if err != nil {
		return nil, err
	}
	defer db.Close()

	memP := vfs.NewMem()
	loadS, err := openP2(device.WrapFS(memP, device.New(device.Null, 1)), "p2", 8, true, lsm.RocksDBOptions, nil)
	if err != nil {
		return nil, err
	}
	if err := preloadFast(loadS, e.Keys, e.ValueSize); err != nil {
		return nil, err
	}
	loadS.Close()
	s, err := openP2(device.WrapFS(memP, device.New(device.NVMe, scale)), "p2", 8, true, lsm.RocksDBOptions, nil)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	for _, size := range sizes {
		ch := workload.NewUniform(uint64(e.Keys-size), 7)
		rocksRange, err := e.measure(1, scale, func(_, _ int) error {
			start := ch.Next()
			return rocksRangeQuery(db, workload.Key(start), workload.Key(start+uint64(size)-1))
		})
		if err != nil {
			return nil, err
		}
		p2Range, err := e.measure(1, scale, func(_, _ int) error {
			start := ch.Next()
			_, err := s.Range(workload.Key(start), workload.Key(start+uint64(size)-1))
			return err
		})
		if err != nil {
			return nil, err
		}
		rocksScan, err := e.measure(1, scale, func(_, _ int) error {
			return rocksScanQuery(db, workload.Key(ch.Next()), size)
		})
		if err != nil {
			return nil, err
		}
		p2Scan, err := e.measure(1, scale, func(_, _ int) error {
			_, err := s.Scan(workload.Key(ch.Next()), size)
			return err
		})
		if err != nil {
			return nil, err
		}
		tbl.Add(size, rocksRange.SimQPS, p2Range.SimQPS, rocksScan.SimQPS, p2Scan.SimQPS)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

func rocksRangeQuery(db *lsm.DB, begin, end []byte) error {
	it, err := db.NewIterator()
	if err != nil {
		return err
	}
	defer it.Close()
	for it.Seek(begin); it.Valid() && string(it.Key()) <= string(end); it.Next() {
	}
	return it.Error()
}

func rocksScanQuery(db *lsm.DB, start []byte, n int) error {
	it, err := db.NewIterator()
	if err != nil {
		return err
	}
	defer it.Close()
	count := 0
	for it.Seek(start); it.Valid() && count < n; it.Next() {
		count++
	}
	return it.Error()
}
