package bench

import (
	"fmt"
	"time"

	"p2kvs/internal/core"
	"p2kvs/internal/device"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/metrics"
	"p2kvs/internal/vfs"
	"p2kvs/internal/workload"
)

// applySimCosts attaches the simulated software-path cost model to an
// engine whose files sit behind a simulated device: ~2us of serialized
// host CPU per logged record plus ~1.5ns/byte, multiplied by the
// device's time scale. This is the per-request foreground cost §3 shows
// bottlenecking a single instance — without it the scaled-time world
// would make group logging artificially free. Null-device (preload)
// filesystems get no cost.
func applySimCosts(o *lsm.Options, fs vfs.FS) {
	dfs, ok := fs.(*device.FS)
	if !ok {
		return
	}
	prof := dfs.Device().Profile()
	if prof.Name == "null" {
		return
	}
	s := scaleFor(prof)
	// ~1us flat per log write (syscall + group bookkeeping) plus ~6ns
	// per byte (encode/checksum/memcpy ≈ 0.9us per 144B op): a batched
	// op costs ~2x less software time than a solo op, Figure 7's shape.
	o.WALPerRecordCost = time.Duration(1000 * s)
	o.WALPerByteCost = time.Duration(6 * s)
	o.ReadPerOpCost = time.Duration(2000 * s) // 2us real per lookup
}

// simPerOpCost returns the scaled per-request software cost for engines
// that take a single knob (KVell's worker path ~1.5us per op: in-memory
// index walk + slab bookkeeping; its IO costs come from the device).
func simPerOpCost(fs vfs.FS) time.Duration {
	dfs, ok := fs.(*device.FS)
	if !ok {
		return 0
	}
	prof := dfs.Device().Profile()
	if prof.Name == "null" {
		return 0
	}
	return time.Duration(1500 * scaleFor(prof))
}

// benchLSMSizes shrinks the engine's structural budgets so scaled-down
// experiment runs still exercise rotation, flush and compaction.
func benchLSMSizes(o *lsm.Options) {
	o.MemTableSize = 256 << 10
	o.BaseLevelSize = 1 << 20
	o.TargetFileSize = 256 << 10
	// The block cache stands in for the block cache PLUS the OS page
	// cache of the paper's testbed (64 GB RAM): zipfian point reads are
	// largely memory-served (CPU-bound, where multiget amortization
	// pays), while scans and cold uniform reads spill to the device.
	o.BlockCacheSize = 256 << 10
}

func openRocks(fs vfs.FS, dir string, mutate ...func(*lsm.Options)) (*lsm.DB, error) {
	o := lsm.RocksDBOptions(fs)
	benchLSMSizes(&o)
	applySimCosts(&o, fs)
	for _, m := range mutate {
		m(&o)
	}
	return lsm.Open(dir, o)
}

func openPebbles(fs vfs.FS, dir string) (*lsm.DB, error) {
	o := lsm.PebblesDBOptions(fs)
	benchLSMSizes(&o)
	applySimCosts(&o, fs)
	return lsm.Open(dir, o)
}

// openP2 opens a p2KVS store over LSM instances with the given preset.
func openP2(fs vfs.FS, dir string, workers int, obm bool, preset func(vfs.FS) lsm.Options, meters *metrics.Group) (*core.Store, error) {
	opts := core.DefaultOptions(func(id int, filter func(uint64) bool) (kv.Engine, error) {
		o := preset(fs)
		benchLSMSizes(&o)
		applySimCosts(&o, fs)
		return lsm.OpenWith(fmt.Sprintf("%s/inst-%02d", dir, id), o, lsm.OpenOptions{RecoverFilter: filter})
	})
	opts.Workers = workers
	opts.OBM = obm
	opts.TxnFS = fs
	opts.TxnDir = dir + "/txn"
	opts.Meters = meters
	return core.Open(opts)
}

// preload writes keys [0, n) with the benchmark value size and flushes.
func preload(e kv.Engine, n, valueSize int) error {
	for i := 0; i < n; i++ {
		if err := e.Put(workload.Key(uint64(i)), workload.Value(uint64(i), valueSize)); err != nil {
			return err
		}
	}
	return e.Flush()
}

// preloadFast loads via a null-device filesystem trick is not possible
// once the engine is open, so preload batches instead: 512-op batches cut
// per-op WAL latency during setup.
func preloadFast(e kv.Engine, n, valueSize int) error {
	bw, ok := e.(kv.BatchWriter)
	if !ok {
		return preload(e, n, valueSize)
	}
	var b kv.Batch
	for i := 0; i < n; i++ {
		b.Put(workload.Key(uint64(i)), workload.Value(uint64(i), valueSize))
		if b.Len() >= 512 {
			if err := bw.Write(&b); err != nil {
				return err
			}
			b.Reset()
		}
	}
	if b.Len() > 0 {
		if err := bw.Write(&b); err != nil {
			return err
		}
	}
	return e.Flush()
}

// utilization converts device stats to a fraction of the profile's
// sequential-write bandwidth over the simulated elapsed time.
func writeUtilization(st device.Stats, prof device.Profile, simElapsedSec float64) float64 {
	if simElapsedSec <= 0 {
		return 0
	}
	return float64(st.WrittenBytes) / simElapsedSec / prof.SeqWriteBW
}
