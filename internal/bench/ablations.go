package bench

import (
	"fmt"
	"sort"

	"p2kvs/internal/core"
	"p2kvs/internal/device"
	"p2kvs/internal/keyspace"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
	"p2kvs/internal/workload"
)

// RunAblationBatch sweeps OBM's maximum batch size (the paper fixes 32
// as a tail-latency guard; this quantifies the choice). Expected shape:
// write QPS climbs steeply to ~16-32 then flattens.
func RunAblationBatch(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Ablation: OBM max batch size (p2KVS-4, 16 submitters, random write)",
		"max batch", "simQPS", "avg formed batch")
	sizes := []int{1, 4, 8, 16, 32, 128}
	if e.Quick {
		sizes = []int{1, 32}
	}
	for _, max := range sizes {
		fs, scale := newDevFS(device.NVMe)
		opts := core.DefaultOptions(func(id int, filter func(uint64) bool) (kv.Engine, error) {
			o := lsm.RocksDBOptions(fs)
			benchLSMSizes(&o)
			applySimCosts(&o, fs)
			return lsm.OpenWith(fmt.Sprintf("p2/inst-%02d", id), o, lsm.OpenOptions{RecoverFilter: filter})
		})
		opts.Workers = 4
		opts.MaxBatch = max
		s, err := core.Open(opts)
		if err != nil {
			return nil, err
		}
		res, err := asyncFill(e, s, 16, scale, e.ValueSize)
		if err != nil {
			s.Close()
			return nil, err
		}
		var ops, batches int64
		for _, ws := range s.Stats() {
			ops += ws.Ops
			batches += ws.Batches
		}
		s.Close()
		avg := 0.0
		if batches > 0 {
			avg = float64(ops) / float64(batches)
		}
		tbl.Add(max, res.SimQPS, avg)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunAblationPartition compares the default hash partitioner with a
// static range partitioner under uniform and zipfian load, reporting QPS
// and the worker-load imbalance (max/mean ops). Expected shape: hash
// stays balanced under skew; range partitioning concentrates hot ranges.
func RunAblationPartition(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Ablation: partitioning strategy (p2KVS-4, 16 submitters)",
		"distribution", "partitioner", "simQPS", "load imbalance (max/mean)")
	const workers = 4
	for _, dist := range []string{"uniform", "zipfian"} {
		for _, part := range []string{"hash", "range"} {
			fs, scale := newDevFS(device.NVMe)
			opts := core.DefaultOptions(func(id int, filter func(uint64) bool) (kv.Engine, error) {
				o := lsm.RocksDBOptions(fs)
				benchLSMSizes(&o)
				applySimCosts(&o, fs)
				return lsm.OpenWith(fmt.Sprintf("p2/inst-%02d", id), o, lsm.OpenOptions{RecoverFilter: filter})
			})
			opts.Workers = workers
			if part == "range" {
				// Static splits assuming uniform key text (user....).
				splits := make([][]byte, workers-1)
				for i := range splits {
					splits[i] = workload.Key(uint64((i + 1) * e.Keys / workers))
				}
				opts.Partitioner = keyspace.NewRange(splits)
			}
			s, err := core.Open(opts)
			if err != nil {
				return nil, err
			}
			choosers := make([]workload.Chooser, 16)
			for t := range choosers {
				if dist == "zipfian" {
					choosers[t] = workload.NewZipfian(uint64(e.Keys), int64(t+1))
				} else {
					choosers[t] = workload.NewUniform(uint64(e.Keys), int64(t+1))
				}
			}
			res, err := e.measure(16, scale, func(tid, _ int) error {
				idx := choosers[tid].Next()
				return s.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
			})
			if err != nil {
				s.Close()
				return nil, err
			}
			var ops []float64
			var sum float64
			for _, ws := range s.Stats() {
				ops = append(ops, float64(ws.Ops))
				sum += float64(ws.Ops)
			}
			s.Close()
			sort.Float64s(ops)
			imbalance := 0.0
			if sum > 0 {
				imbalance = ops[len(ops)-1] / (sum / float64(workers))
			}
			tbl.Add(dist, part, res.SimQPS, imbalance)
		}
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunAblationScan compares the two SCAN strategies from §4.4 across scan
// sizes. Expected shape: the speculative parallel scan wins at small
// sizes (latency-bound); the merged iterator closes in as sizes grow and
// over-read dominates.
func RunAblationScan(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Ablation: SCAN strategy (p2KVS-8, 1 thread)",
		"scan size", "parallel simQPS", "merged simQPS")
	sizes := []int{10, 100, 1000}
	if e.Quick {
		sizes = []int{10, 100}
	}
	mem := vfs.NewMem()
	load, err := openP2(device.WrapFS(mem, device.New(device.Null, 1)), "p2", 8, true, lsm.RocksDBOptions, nil)
	if err != nil {
		return nil, err
	}
	if err := preloadFast(load, e.Keys, e.ValueSize); err != nil {
		return nil, err
	}
	load.Close()
	scale := scaleFor(device.NVMe)

	for _, size := range sizes {
		row := []interface{}{size}
		for _, merged := range []bool{false, true} {
			devfs := device.WrapFS(mem, device.New(device.NVMe, scale))
			opts := core.DefaultOptions(func(id int, filter func(uint64) bool) (kv.Engine, error) {
				o := lsm.RocksDBOptions(devfs)
				benchLSMSizes(&o)
				applySimCosts(&o, devfs)
				return lsm.OpenWith(fmt.Sprintf("p2/inst-%02d", id), o, lsm.OpenOptions{RecoverFilter: filter})
			})
			opts.Workers = 8
			if merged {
				opts.Scan = core.ScanMerged
			}
			s, err := core.Open(opts)
			if err != nil {
				return nil, err
			}
			ch := workload.NewUniform(uint64(e.Keys-size), 3)
			res, err := e.measure(1, scale, func(_, _ int) error {
				_, err := s.Scan(workload.Key(ch.Next()), size)
				return err
			})
			s.Close()
			if err != nil {
				return nil, err
			}
			row = append(row, res.SimQPS)
		}
		tbl.Add(row...)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunAblationCache quantifies the per-instance block cache (the paper's
// RocksDB instances run 8 MB block caches, §5.5): read throughput on a
// zipfian working set with the cache disabled vs enabled. Expected
// shape: the cache absorbs the hot set, multiplying read QPS.
func RunAblationCache(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Ablation: block cache (RocksDB preset, zipfian reads, 8 threads)",
		"block cache", "simQPS", "hit rate %")
	for _, cacheSize := range []int64{-1, 8 << 20} {
		mem := vfs.NewMem()
		load, err := openRocks(device.WrapFS(mem, device.New(device.Null, 1)), "db",
			func(o *lsm.Options) { o.BlockCacheSize = cacheSize })
		if err != nil {
			return nil, err
		}
		if err := preloadFast(load, e.Keys, e.ValueSize); err != nil {
			return nil, err
		}
		load.Close()
		scale := scaleFor(device.NVMe)
		db, err := openRocks(device.WrapFS(mem, device.New(device.NVMe, scale)), "db",
			func(o *lsm.Options) { o.BlockCacheSize = cacheSize })
		if err != nil {
			return nil, err
		}
		choosers := make([]workload.Chooser, 8)
		for t := range choosers {
			choosers[t] = workload.NewZipfian(uint64(e.Keys), int64(t+1))
		}
		res, err := e.measure(8, scale, func(tid, _ int) error {
			_, err := db.Get(workload.Key(choosers[tid].Next()))
			if err == kv.ErrNotFound {
				err = nil
			}
			return err
		})
		hits, misses := db.BlockCacheStats()
		db.Close()
		if err != nil {
			return nil, err
		}
		label := "off"
		hitRate := 0.0
		if cacheSize > 0 {
			label = "8MB"
			if hits+misses > 0 {
				hitRate = 100 * float64(hits) / float64(hits+misses)
			}
		}
		tbl.Add(label, res.SimQPS, hitRate)
	}
	tbl.Print(e.Out)
	return tbl, nil
}
