package bench

import (
	"fmt"
	"sync/atomic"

	"p2kvs/internal/core"
	"p2kvs/internal/device"
	"p2kvs/internal/kv"
	"p2kvs/internal/kvell"
	"p2kvs/internal/lsm"
	"p2kvs/internal/metrics"
	"p2kvs/internal/vfs"
	"p2kvs/internal/workload"
	"p2kvs/internal/ycsb"
)

// kvStore is what the YCSB driver needs from a system under test.
type kvStore interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Flush() error
	Close() error
}

// scanner is the optional scan capability (p2KVS and KVell have native
// Scan; raw engines go through iterators).
type scanner interface {
	Scan(start []byte, n int) ([]core.Pair, error)
}

// runYCSB drives one workload phase and returns the simulated QPS.
func runYCSB(e Env, s kvStore, spec ycsb.Spec, threads int, scale float64, valueSize int, loaded uint64) (float64, error) {
	frontier := ycsb.NewFrontier(loaded)
	gens := make([]*ycsb.Generator, threads)
	for t := range gens {
		gens[t] = ycsb.NewGenerator(spec, loaded, frontier, int64(t+1))
	}
	res, err := e.measure(threads, scale, func(tid, _ int) error {
		op := gens[tid].Next()
		key := workload.Key(op.KeyIdx)
		switch op.Type {
		case ycsb.OpInsert, ycsb.OpUpdate:
			return s.Put(key, workload.Value(op.KeyIdx, valueSize))
		case ycsb.OpRead:
			_, err := s.Get(key)
			if err == kv.ErrNotFound {
				err = nil
			}
			return err
		case ycsb.OpScan:
			return ycsbScan(s, key, op.ScanLen)
		case ycsb.OpRMW:
			if _, err := s.Get(key); err != nil && err != kv.ErrNotFound {
				return err
			}
			return s.Put(key, workload.Value(op.KeyIdx, valueSize))
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return res.SimQPS, nil
}

func ycsbScan(s kvStore, start []byte, n int) error {
	if sc, ok := s.(scanner); ok {
		_, err := sc.Scan(start, n)
		return err
	}
	type iterable interface {
		NewIterator() (kv.Iterator, error)
	}
	it, err := s.(iterable).NewIterator()
	if err != nil {
		return err
	}
	defer it.Close()
	count := 0
	for it.Seek(start); it.Valid() && count < n; it.Next() {
		count++
	}
	return it.Error()
}

// ycsbSystem opens a system-under-test twice: once behind a null device
// for the load phase and again behind the NVMe model for measurement.
type ycsbSystem struct {
	name string
	open func(fs vfs.FS) (kvStore, error)
}

func lsmSystem(name string, preset func(vfs.FS) lsm.Options) ycsbSystem {
	return ycsbSystem{name: name, open: func(fs vfs.FS) (kvStore, error) {
		o := preset(fs)
		benchLSMSizes(&o)
		applySimCosts(&o, fs)
		return lsm.Open("db", o)
	}}
}

func p2System(name string, workers int, obm bool) ycsbSystem {
	return ycsbSystem{name: name, open: func(fs vfs.FS) (kvStore, error) {
		return openP2(fs, "p2", workers, obm, lsm.RocksDBOptions, nil)
	}}
}

func kvellSystem(name string, workers int) ycsbSystem {
	return ycsbSystem{name: name, open: func(fs vfs.FS) (kvStore, error) {
		return kvell.Open("kvl", kvell.Options{
			FS: fs, Workers: workers, CacheBytes: 8 << 20,
			PerOpCost: simPerOpCost(fs),
		})
	}}
}

// measureYCSBCell loads the system on a free device, reopens it on NVMe
// and runs the workload phase.
func measureYCSBCell(e Env, sys ycsbSystem, spec ycsb.Spec, threads, valueSize int) (float64, error) {
	mem := vfs.NewMem()
	loaded := uint64(e.Keys)
	if spec.Name != "LOAD" {
		l, err := sys.open(device.WrapFS(mem, device.New(device.Null, 1)))
		if err != nil {
			return 0, err
		}
		if err := preloadKV(l, e.Keys, valueSize); err != nil {
			l.Close()
			return 0, err
		}
		if err := l.Close(); err != nil {
			return 0, err
		}
	} else {
		loaded = uint64(e.Keys) // LOAD inserts beyond this frontier
	}
	scale := scaleFor(device.NVMe)
	s, err := sys.open(device.WrapFS(mem, device.New(device.NVMe, scale)))
	if err != nil {
		return 0, err
	}
	defer s.Close()
	return runYCSB(e, s, spec, threads, scale, valueSize, loaded)
}

func preloadKV(s kvStore, n, valueSize int) error {
	if bw, ok := s.(kv.BatchWriter); ok {
		var b kv.Batch
		for i := 0; i < n; i++ {
			b.Put(workload.Key(uint64(i)), workload.Value(uint64(i), valueSize))
			if b.Len() >= 512 {
				if err := bw.Write(&b); err != nil {
					return err
				}
				b.Reset()
			}
		}
		if b.Len() > 0 {
			if err := bw.Write(&b); err != nil {
				return err
			}
		}
		return s.Flush()
	}
	for i := 0; i < n; i++ {
		if err := s.Put(workload.Key(uint64(i)), workload.Value(uint64(i), valueSize)); err != nil {
			return err
		}
	}
	return s.Flush()
}

// RunFig16 reproduces Figure 16: YCSB throughput for RocksDB, p2KVS-4
// and p2KVS-8 at 8 and 32 client threads. Expected shape: large p2KVS
// wins on LOAD/A/F, 1-2x on B/C/D, parity on E.
func RunFig16(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 16: YCSB throughput (simulated QPS, NVMe, 128B)",
		"workload", "threads", "RocksDB", "p2KVS-4", "p2KVS-8")
	systems := []ycsbSystem{
		lsmSystem("RocksDB", lsm.RocksDBOptions),
		p2System("p2KVS-4", 4, true),
		p2System("p2KVS-8", 8, true),
	}
	workloads := ycsb.Order
	threadCounts := []int{8, 32}
	if e.Quick {
		workloads = []string{"LOAD", "A", "C"}
		threadCounts = []int{8}
	}
	for _, name := range workloads {
		spec := ycsb.Workloads[name]
		for _, threads := range threadCounts {
			row := []interface{}{name, threads}
			for _, sys := range systems {
				qps, err := measureYCSBCell(e, sys, spec, threads, e.ValueSize)
				if err != nil {
					return nil, err
				}
				row = append(row, qps)
			}
			tbl.Add(row...)
		}
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig17 reproduces Figure 17: sensitivity to the number of workers
// and to OBM, normalized to single-worker-no-OBM (≈ RocksDB). Expected
// shape: QPS grows with workers; OBM multiplies the win, especially on
// LOAD and C.
func RunFig17(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 17: worker-count and OBM sensitivity (normalized QPS)",
		"workload", "workers", "no OBM", "OBM")
	workloads := []string{"LOAD", "A", "B", "C"}
	workerCounts := []int{1, 2, 4, 8}
	if e.Quick {
		workloads = []string{"LOAD", "C"}
		workerCounts = []int{1, 4}
	}
	const threads = 16
	for _, name := range workloads {
		spec := ycsb.Workloads[name]
		var baseline float64
		for _, workers := range workerCounts {
			var cells [2]float64
			for i, obm := range []bool{false, true} {
				qps, err := measureYCSBCell(e, p2System("p2", workers, obm), spec, threads, e.ValueSize)
				if err != nil {
					return nil, err
				}
				cells[i] = qps
			}
			if baseline == 0 {
				baseline = cells[0]
			}
			tbl.Add(name, workers, cells[0]/baseline, cells[1]/baseline)
		}
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig18 reproduces Figures 18 and 19: sensitivity to KV size on
// LOAD/A/C (p2KVS-8 speedup over RocksDB per size). Expected shape:
// small KVs benefit most from OBM; at 1KB+ the write-side speedup
// shrinks while read-side benefits persist.
func RunFig18(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figures 18/19: KV-size sensitivity (p2KVS-8 speedup over RocksDB)",
		"value size", "LOAD", "A", "C")
	sizes := []int{64, 128, 1024}
	workloads := []string{"LOAD", "A", "C"}
	if e.Quick {
		sizes = []int{128, 1024}
	}
	const threads = 16
	for _, vs := range sizes {
		row := []interface{}{fmt.Sprintf("%dB", vs)}
		for _, name := range workloads {
			spec := ycsb.Workloads[name]
			rocks, err := measureYCSBCell(e, lsmSystem("RocksDB", lsm.RocksDBOptions), spec, threads, vs)
			if err != nil {
				return nil, err
			}
			p2, err := measureYCSBCell(e, p2System("p2KVS-8", 8, true), spec, threads, vs)
			if err != nil {
				return nil, err
			}
			row = append(row, p2/rocks)
		}
		tbl.Add(row...)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig20 reproduces Figure 20: KVell-4/8 vs p2KVS-4/8 across YCSB.
// Expected shape: p2KVS wins write-heavy (LOAD/A/F) and scans (E); KVell
// is competitive on point reads (B/C/D) thanks to its in-memory index.
func RunFig20(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 20: KVell vs p2KVS (simulated QPS)",
		"workload", "KVell-4", "KVell-8", "p2KVS-4", "p2KVS-8")
	systems := []ycsbSystem{
		kvellSystem("KVell-4", 4),
		kvellSystem("KVell-8", 8),
		p2System("p2KVS-4", 4, true),
		p2System("p2KVS-8", 8, true),
	}
	workloads := ycsb.Order
	if e.Quick {
		workloads = []string{"LOAD", "C", "E"}
	}
	const threads = 16
	for _, name := range workloads {
		spec := ycsb.Workloads[name]
		row := []interface{}{name}
		for _, sys := range systems {
			qps, err := measureYCSBCell(e, sys, spec, threads, e.ValueSize)
			if err != nil {
				return nil, err
			}
			row = append(row, qps)
		}
		tbl.Add(row...)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig21 reproduces Figure 21: hardware utilization of p2KVS-8 vs
// KVell-8 under continuous random writes — device write bandwidth,
// memory, total metered CPU and per-worker CPU. Expected shape: p2KVS
// sustains much higher device bandwidth (LSM aggregates small writes);
// KVell's memory is dominated by its in-memory indexes.
func RunFig21(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 21: hardware utilization under random writes",
		"system", "simQPS", "write MB/s", "mem (MB)", "total CPU (core-%)", "avg per-worker CPU %")

	// p2KVS-8.
	{
		fs, scale := newDevFS(device.NVMe)
		g := metrics.NewGroup()
		s, err := openP2(fs, "p2", 8, true, lsm.RocksDBOptions, g)
		if err != nil {
			return nil, err
		}
		res, err := asyncFill(e, s, 16, scale, e.ValueSize)
		if err != nil {
			s.Close()
			return nil, err
		}
		per, cores := g.Snapshot()
		var mem int64
		for i := 0; i < 8; i++ {
			m := s.Engine(i).(*lsm.DB).Metrics()
			mem += m.MemTableBytes + m.WALBytes
		}
		s.Close()
		st := fs.Device().Stats()
		simSec := res.Wall.Seconds() / scale
		avgWorker := 0.0
		for _, u := range per {
			avgWorker += u.Frac
		}
		if len(per) > 0 {
			avgWorker /= float64(len(per))
		}
		tbl.Add("p2KVS-8", res.SimQPS, float64(st.WrittenBytes)/simSec/1e6,
			float64(mem)/1e6, 100*cores, 100*avgWorker)
	}
	// KVell-8.
	{
		fs, scale := newDevFS(device.NVMe)
		g := metrics.NewGroup()
		s, err := kvell.Open("kvl", kvell.Options{
			FS: fs, Workers: 8, CacheBytes: 8 << 20, Meters: g,
			PerOpCost: simPerOpCost(fs),
		})
		if err != nil {
			return nil, err
		}
		choosers := perThreadUniform(16, e.Keys)
		var done atomic.Int64
		res, err := e.measure(16, scale, func(tid, _ int) error {
			idx := choosers[tid].Next()
			done.Add(1)
			return s.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		per, cores := g.Snapshot()
		m := s.Metrics()
		s.Close()
		st := fs.Device().Stats()
		simSec := res.Wall.Seconds() / scale
		avgWorker := 0.0
		for _, u := range per {
			avgWorker += u.Frac
		}
		if len(per) > 0 {
			avgWorker /= float64(len(per))
		}
		tbl.Add("KVell-8", res.SimQPS, float64(st.WrittenBytes)/simSec/1e6,
			float64(m.IndexBytes+m.CacheBytes)/1e6, 100*cores, 100*avgWorker)
	}
	tbl.Print(e.Out)
	return tbl, nil
}
