package bench

import (
	"fmt"
	"time"

	"p2kvs/internal/device"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
	"p2kvs/internal/workload"
)

// RunFig1 reproduces Figure 1: RocksDB throughput for the five db_bench
// operations on HDD, SATA SSD and NVMe SSD, with 1 and 8 user threads.
// The expected shape: reads improve by orders of magnitude from HDD to
// NVMe; writes barely move; 8 threads add far less than 8x.
func RunFig1(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 1: RocksDB QPS across devices (simulated), 128B KVs",
		"device", "threads", "fillseq", "fillrandom", "updaterandom", "readseq", "readrandom")
	for _, prof := range []device.Profile{device.HDD, device.SATA, device.NVMe} {
		for _, threads := range []int{1, 8} {
			row := []interface{}{prof.Name, threads}
			for _, kind := range []workload.MicroKind{
				workload.FillSeq, workload.FillRandom, workload.UpdateRandom,
				workload.ReadSeq, workload.ReadRandom,
			} {
				qps, err := fig1Cell(e, prof, threads, kind)
				if err != nil {
					return nil, err
				}
				row = append(row, qps)
			}
			tbl.Add(row...)
		}
	}
	tbl.Print(e.Out)
	return tbl, nil
}

func fig1Cell(e Env, prof device.Profile, threads int, kind workload.MicroKind) (float64, error) {
	mem := vfs.NewMem()
	needsPreload := kind == workload.UpdateRandom || kind == workload.ReadSeq || kind == workload.ReadRandom
	if needsPreload {
		// Load through a null device so setup doesn't consume budget,
		// then reopen the same files behind the real device model.
		loadDB, err := openRocks(device.WrapFS(mem, device.New(device.Null, 1)), "db")
		if err != nil {
			return 0, err
		}
		if err := preloadFast(loadDB, e.Keys, e.ValueSize); err != nil {
			loadDB.Close()
			return 0, err
		}
		if err := loadDB.Close(); err != nil {
			return 0, err
		}
	}
	scale := scaleFor(prof)
	fs := device.WrapFS(mem, device.New(prof, scale))
	db, err := openRocks(fs, "db")
	if err != nil {
		return 0, err
	}
	defer db.Close()
	choosers := make([]workload.Chooser, threads)
	for t := range choosers {
		choosers[t] = workload.Micro(kind, uint64(e.Keys), int64(t+1))
	}
	isRead := kind == workload.ReadSeq || kind == workload.ReadRandom
	// HDD random IO is 8ms*scale real per op: loosen the minimum.
	if prof.Name == "hdd" {
		e.MinOps = 10
	}
	res, err := e.measure(threads, scale, func(tid, i int) error {
		idx := choosers[tid].Next()
		if isRead {
			_, err := db.Get(workload.Key(idx))
			if err == kv.ErrNotFound {
				return nil
			}
			return err
		}
		return db.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
	})
	if err != nil {
		return 0, err
	}
	return res.SimQPS, nil
}

// RunFig4 reproduces Figure 4: a single user thread inserting
// continuously; the device bandwidth it sustains versus the device's
// capability, for 128B and 1KB values, sequential and random. The
// expected shape: small values leave most of the bandwidth idle (the
// foreground path, not the device, is the bottleneck); 1KB random writes
// drive visible compaction traffic.
func RunFig4(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 4: single-writer bandwidth vs device capability (NVMe)",
		"value", "pattern", "simQPS", "user MB/s", "total MB/s (incl. flush+compaction)", "bw util %")
	for _, vs := range []int{128, 1024} {
		for _, kind := range []workload.MicroKind{workload.FillSeq, workload.FillRandom} {
			fs, scale := newDevFS(device.NVMe)
			db, err := openRocks(fs, "db")
			if err != nil {
				return nil, err
			}
			ch := workload.Micro(kind, uint64(e.Keys*4), 1)
			res, err := e.measure(1, scale, func(_, _ int) error {
				idx := ch.Next()
				return db.Put(workload.Key(idx), workload.Value(idx, vs))
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			db.Close()
			st := fs.Device().Stats()
			simSec := res.Wall.Seconds() / scale
			userMBps := float64(res.Ops) * float64(vs+16) / simSec / 1e6
			totalMBps := float64(st.WrittenBytes) / simSec / 1e6
			tbl.Add(fmt.Sprintf("%dB", vs), string(kind), res.SimQPS, userMBps, totalMBps,
				100*writeUtilization(st, device.NVMe, simSec))
		}
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig5 reproduces Figure 5: random-write throughput scaling with user
// threads for a single shared RocksDB instance versus one instance per
// thread (multi-instance), plus the single-instance device bandwidth and
// the breakdown-relevant stall behaviour. Expected shape: single-instance
// scales poorly (group-logging serialization); multi-instance scales
// further and peaks once device parallelism saturates.
func RunFig5(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 5: concurrent random writes (NVMe, 128B)",
		"threads", "single-inst QPS", "multi-inst QPS", "single bw MB/s", "single bw util %")
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		// Single shared instance.
		fs, scale := newDevFS(device.NVMe)
		db, err := openRocks(fs, "db")
		if err != nil {
			return nil, err
		}
		choosers := perThreadUniform(threads, e.Keys)
		resS, err := e.measure(threads, scale, func(tid, _ int) error {
			idx := choosers[tid].Next()
			return db.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		st := fs.Device().Stats()
		db.Close()
		simSec := resS.Wall.Seconds() / scale

		// Multi-instance: one private instance per thread.
		fsM, scaleM := newDevFS(device.NVMe)
		dbs := make([]*lsm.DB, threads)
		for t := range dbs {
			dbs[t], err = openRocks(fsM, fmt.Sprintf("db-%02d", t))
			if err != nil {
				return nil, err
			}
		}
		choosersM := perThreadUniform(threads, e.Keys)
		resM, err := e.measure(threads, scaleM, func(tid, _ int) error {
			idx := choosersM[tid].Next()
			return dbs[tid].Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
		})
		for _, d := range dbs {
			d.Close()
		}
		if err != nil {
			return nil, err
		}
		tbl.Add(threads, resS.SimQPS, resM.SimQPS,
			float64(st.WrittenBytes)/simSec/1e6,
			100*writeUtilization(st, device.NVMe, simSec))
	}
	tbl.Print(e.Out)
	return tbl, nil
}

func perThreadUniform(threads, keys int) []workload.Chooser {
	out := make([]workload.Chooser, threads)
	for t := range out {
		out[t] = workload.NewUniform(uint64(keys), int64(t+1))
	}
	return out
}

// RunFig6 reproduces Figure 6: the write-latency breakdown of the shared
// instance as user threads grow. Expected shape: WAL+MemTable dominate at
// 1 thread; the lock components (group-logging wait/wakeup) take over as
// threads grow.
func RunFig6(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 6: RocksDB write latency breakdown (shared instance, NVMe)",
		"threads", "WAL %", "WAL lock %", "MemTable %", "MemTable lock %", "Others %", "avg lat (sim us)")
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		fs, scale := newDevFS(device.NVMe)
		db, err := openRocks(fs, "db")
		if err != nil {
			return nil, err
		}
		choosers := perThreadUniform(threads, e.Keys)
		res, err := e.measure(threads, scale, func(tid, _ int) error {
			idx := choosers[tid].Next()
			return db.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		p := db.Perf()
		db.Close()
		total := float64(p.TotalTime)
		if total == 0 {
			total = 1
		}
		pct := func(d time.Duration) float64 { return 100 * float64(d) / total }
		_ = res
		tbl.Add(threads,
			pct(p.WALTime), pct(p.WALLockTime), pct(p.MemTime), pct(p.MemLockTime),
			pct(p.OtherTime()+p.StallTime),
			float64(p.TotalTime.Microseconds())/float64(p.Writes)/scale)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig7 reproduces Figure 7: the effect of WriteBatch size on log
// bandwidth and per-KV software overhead (async logging, WAL-only
// engine). Expected shape: bigger batches raise device bandwidth
// utilization and cut per-KV cost.
func RunFig7(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 7: request batching effect on the WAL (WAL-only, NVMe)",
		"batch bytes", "KVs/batch", "sim MB/s", "bw util %", "per-KV cost (sim us)")
	kvSize := e.ValueSize + 16
	for _, batchBytes := range []int{256, 1024, 4096, 16384} {
		perBatch := batchBytes / kvSize
		if perBatch < 1 {
			perBatch = 1
		}
		fs, scale := newDevFS(device.NVMe)
		db, err := openRocks(fs, "db", func(o *lsm.Options) { o.WALOnly = true })
		if err != nil {
			return nil, err
		}
		ch := workload.NewUniform(uint64(e.Keys), 1)
		res, err := e.measure(1, scale, func(_, _ int) error {
			var b kv.Batch
			for j := 0; j < perBatch; j++ {
				idx := ch.Next()
				b.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
			}
			return db.Write(&b)
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		st := fs.Device().Stats()
		db.Close()
		simSec := res.Wall.Seconds() / scale
		kvs := res.Ops * int64(perBatch)
		tbl.Add(batchBytes, perBatch,
			float64(st.WrittenBytes)/simSec/1e6,
			100*writeUtilization(st, device.NVMe, simSec),
			simSec*1e6/float64(kvs))
	}
	tbl.Print(e.Out)
	return tbl, nil
}

// RunFig8 reproduces Figure 8: logging-only and memtable-only throughput
// under the single-instance and multi-instance schemes. Expected shapes:
// (a) batching lifts the shared log; per-thread logs scale until device
// parallelism saturates. (b) the memtable path favours multi-instance
// (no shared-structure synchronization) — note that on a single-core
// host the CPU-bound memtable rows compress toward parity; the direction
// (multi >= single) is what carries.
func RunFig8(e Env) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable("Figure 8: WAL-only and MemTable-only scaling (NVMe, 128B)",
		"threads", "log single", "log single+batch", "log multi", "mem single", "mem multi")
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		logSingle, err := fig8Log(e, threads, false, false)
		if err != nil {
			return nil, err
		}
		logSingleB, err := fig8Log(e, threads, false, true)
		if err != nil {
			return nil, err
		}
		logMulti, err := fig8Log(e, threads, true, false)
		if err != nil {
			return nil, err
		}
		memSingle, err := fig8Mem(e, threads, false)
		if err != nil {
			return nil, err
		}
		memMulti, err := fig8Mem(e, threads, true)
		if err != nil {
			return nil, err
		}
		tbl.Add(threads, logSingle, logSingleB, logMulti, memSingle, memMulti)
	}
	tbl.Print(e.Out)
	return tbl, nil
}

func fig8Log(e Env, threads int, multi, batch bool) (float64, error) {
	fs, scale := newDevFS(device.NVMe)
	n := 1
	if multi {
		n = threads
	}
	dbs := make([]*lsm.DB, n)
	var err error
	for i := range dbs {
		dbs[i], err = openRocks(fs, fmt.Sprintf("db-%02d", i), func(o *lsm.Options) { o.WALOnly = true })
		if err != nil {
			return 0, err
		}
	}
	defer func() {
		for _, d := range dbs {
			d.Close()
		}
	}()
	choosers := perThreadUniform(threads, e.Keys)
	perBatch := 1
	if batch {
		perBatch = 8
	}
	res, err := e.measure(threads, scale, func(tid, _ int) error {
		db := dbs[tid%len(dbs)]
		var b kv.Batch
		for j := 0; j < perBatch; j++ {
			idx := choosers[tid].Next()
			b.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
		}
		return db.Write(&b)
	})
	if err != nil {
		return 0, err
	}
	return res.SimQPS * float64(perBatch), nil
}

func fig8Mem(e Env, threads int, multi bool) (float64, error) {
	// CPU-only path: no device, no WAL; report raw wall QPS (scale 1).
	fs := device.WrapFS(vfs.NewMem(), device.New(device.Null, 1))
	n := 1
	if multi {
		n = threads
	}
	dbs := make([]*lsm.DB, n)
	var err error
	for i := range dbs {
		dbs[i], err = openRocks(fs, fmt.Sprintf("db-%02d", i), func(o *lsm.Options) {
			o.DisableWAL = true
			o.MemTableOnly = true
		})
		if err != nil {
			return 0, err
		}
	}
	defer func() {
		for _, d := range dbs {
			d.Close()
		}
	}()
	choosers := perThreadUniform(threads, e.Keys)
	res, err := e.measure(threads, 1, func(tid, _ int) error {
		idx := choosers[tid].Next()
		return dbs[tid%len(dbs)].Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
	})
	if err != nil {
		return 0, err
	}
	return res.SimQPS, nil
}
