// Package bench contains one runner per table and figure in the paper's
// evaluation (§1 Figure 1, §3 Figures 4-8, §5 Figures 12-23 and Tables
// 1-2), plus the ablations DESIGN.md calls out. Each runner prints the
// same rows/series the paper reports and returns them for programmatic
// checks.
//
// # Time model
//
// The host's sleep granularity (~1ms here) makes microsecond-accurate
// device sleeps impossible, so every experiment runs its simulated device
// at a per-profile time scale s chosen to push the smallest charged IO
// latency above the sleep floor, and reports throughput in simulated
// operations per second:
//
//	simQPS = measuredOps * s / wallClock
//
// Dividing by s also shrinks the real CPU contribution of this Go
// implementation by s, so reported numbers are IO-model-dominated. That
// is the intended reading: per-IO latencies in the device profiles stand
// in for the per-IO host software cost the paper identifies as the real
// bottleneck (§3.1), so "fewer, larger IOs" (batching, group logging)
// and "more parallel IO streams" (multi-instance) translate into exactly
// the throughput effects the paper measures. Absolute numbers are not
// comparable to the paper's testbed; shapes and ratios are.
package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/device"
	"p2kvs/internal/vfs"
)

// Env is the shared experiment configuration.
type Env struct {
	// Out receives the printed tables.
	Out io.Writer
	// Budget is the wall-clock target per measured cell (default 2s).
	Budget time.Duration
	// MinOps / MaxOps bound the per-cell operation count.
	MinOps int
	MaxOps int
	// ValueSize is the KV value size (paper default 128B).
	ValueSize int
	// Keys is the preloaded key-space size for read benches.
	Keys int
	// Quick shrinks budgets for smoke tests.
	Quick bool
}

// WithDefaults fills unset fields.
func (e Env) WithDefaults() Env {
	if e.Out == nil {
		e.Out = io.Discard
	}
	if e.Budget <= 0 {
		e.Budget = 2 * time.Second
	}
	if e.MinOps <= 0 {
		e.MinOps = 200
	}
	if e.MaxOps <= 0 {
		e.MaxOps = 40000
	}
	if e.ValueSize <= 0 {
		e.ValueSize = 128
	}
	if e.Keys <= 0 {
		e.Keys = 20000
	}
	if e.Quick {
		e.Budget = 300 * time.Millisecond
		e.MinOps = 50
		e.MaxOps = 3000
		e.Keys = 2000
	}
	return e
}

// Scales map device profiles to the time multiplier that lifts their
// smallest per-IO latency above the host sleep floor.
func scaleFor(prof device.Profile) float64 {
	switch prof.Name {
	case "nvme":
		return 300 // 5us seq -> 1.5ms
	case "sata":
		return 50 // 30us seq -> 1.5ms
	case "hdd":
		return 25 // 50us seq -> 1.25ms; 8ms seek -> 200ms
	default:
		return 1
	}
}

// newDevFS builds a fresh in-memory filesystem behind a simulated device.
func newDevFS(prof device.Profile) (*device.FS, float64) {
	s := scaleFor(prof)
	return device.WrapFS(vfs.NewMem(), device.New(prof, s)), s
}

// Res is one measured cell.
type Res struct {
	Ops    int64
	Wall   time.Duration
	SimQPS float64
}

// measure runs op concurrently on `threads` closed-loop client threads
// until the budget elapses (and at least MinOps completed), then converts
// to simulated QPS at the given device scale. op receives the thread id
// and a per-thread op counter.
func (e Env) measure(threads int, scale float64, op func(tid, i int) error) (Res, error) {
	var (
		total   atomic.Int64
		stop    atomic.Bool
		firstMu sync.Mutex
		first   error
	)
	maxPer := e.MaxOps / threads
	if maxPer < 1 {
		maxPer = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < maxPer; i++ {
				if stop.Load() {
					return
				}
				if err := op(tid, i); err != nil {
					firstMu.Lock()
					if first == nil {
						first = err
					}
					firstMu.Unlock()
					stop.Store(true)
					return
				}
				n := total.Add(1)
				elapsed := time.Since(start)
				// Budget-bounded: normally wait for MinOps, but a hard
				// cap at 5x budget keeps very slow cells (HDD seeks,
				// large scans) from running away.
				if (n >= int64(e.MinOps) && elapsed > e.Budget) || elapsed > 5*e.Budget {
					stop.Store(true)
					return
				}
			}
		}(t)
	}
	wg.Wait()
	wall := time.Since(start)
	if first != nil {
		return Res{}, first
	}
	ops := total.Load()
	return Res{
		Ops:    ops,
		Wall:   wall,
		SimQPS: float64(ops) * scale / wall.Seconds(),
	}, nil
}

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

// Table accumulates aligned rows for printing.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable starts a table.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmtFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	for i, h := range t.Header {
		fmt.Fprintf(w, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		for i, c := range r {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
}
