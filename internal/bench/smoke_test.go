package bench

import (
	"strings"
	"testing"
)

// TestSmokeAllExperiments runs every registered experiment in Quick mode:
// each must complete without error and produce at least one data row.
// (The full-budget runs live in the repo-root bench_test.go and in
// cmd/p2kvs-bench; this is the correctness gate.)
func TestSmokeAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke experiments are seconds-long each; skipped in -short")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			tbl, err := Run(name, Env{Quick: true, Out: &sb})
			if err != nil {
				t.Fatalf("%s failed: %v", name, err)
			}
			if tbl == nil || len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", name)
			}
			if !strings.Contains(sb.String(), tbl.Title) {
				t.Fatalf("%s did not print its table", name)
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("bogus", Env{Quick: true}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestMeasureRespectsBudget(t *testing.T) {
	e := Env{Quick: true}.WithDefaults()
	res, err := e.measure(2, 10, func(tid, i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops <= 0 || res.SimQPS <= 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Ops > int64(e.MaxOps) {
		t.Fatalf("ops %d exceeded MaxOps %d", res.Ops, e.MaxOps)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.Add("x", 1234567.0)
	tbl.Add("y", 0.5)
	var sb strings.Builder
	tbl.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "1.23M") || !strings.Contains(out, "0.500") {
		t.Fatalf("formatting: %q", out)
	}
}
