package bench

import (
	"fmt"
	"time"

	"p2kvs/internal/btreekv"
	"p2kvs/internal/core"
	"p2kvs/internal/device"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/vfs"
	"p2kvs/internal/workload"
)

// RunFig22 reproduces Figure 22: p2KVS over LevelDB instances vs plain
// LevelDB at matching thread counts, random write and random read.
// Expected shape: LevelDB's own write throughput barely moves with
// threads (single writer path); p2KVS-N scales both writes and reads.
func RunFig22(e Env) (*Table, error) {
	return runPortability(e, "Figure 22: p2KVS on LevelDB (simulated QPS)",
		func(fs vfs.FS, dir string) (kvStore, error) {
			o := lsm.LevelDBOptions(fs)
			benchLSMSizes(&o)
			applySimCosts(&o, fs)
			return lsm.Open(dir, o)
		},
		func(fs vfs.FS, workers int) (kvStore, error) {
			return openP2(fs, "p2", workers, true, lsm.LevelDBOptions, nil)
		})
}

// RunFig23 reproduces Figure 23: p2KVS over WiredTiger-style instances
// vs the plain engine. Expected shape: the single instance serializes
// writers on the store latch; p2KVS-N shards the latch away. OBM-write
// is disabled automatically (no batch capability), per §4.6.
func RunFig23(e Env) (*Table, error) {
	return runPortability(e, "Figure 23: p2KVS on WiredTiger (simulated QPS)",
		func(fs vfs.FS, dir string) (kvStore, error) {
			return btreekv.Open(dir, wtOpts(fs))
		},
		func(fs vfs.FS, workers int) (kvStore, error) {
			opts := core.DefaultOptions(func(id int, _ func(uint64) bool) (kv.Engine, error) {
				return btreekv.Open(fmt.Sprintf("p2/wt-%02d", id), wtOpts(fs))
			})
			opts.Workers = workers
			// Cross-partition preload batches need the txn log even
			// though btreekv can't tag GSNs (no rollback support, §4.6).
			opts.TxnFS = fs
			opts.TxnDir = "p2/txn"
			return core.Open(opts)
		})
}

// wtOpts builds WiredTiger-style options with the scaled software-path
// costs (~3us per update under the latch, ~2us per read).
func wtOpts(fs vfs.FS) btreekv.Options {
	o := btreekv.Options{FS: fs, CheckpointBytes: 1 << 20}
	if dfs, ok := fs.(*device.FS); ok {
		if prof := dfs.Device().Profile(); prof.Name != "null" {
			s := scaleFor(prof)
			o.PerUpdateCost = time.Duration(3000 * s)
			o.PerReadCost = time.Duration(2000 * s)
		}
	}
	return o
}

func runPortability(e Env, title string,
	openSingle func(fs vfs.FS, dir string) (kvStore, error),
	openSharded func(fs vfs.FS, workers int) (kvStore, error)) (*Table, error) {
	e = e.WithDefaults()
	tbl := NewTable(title,
		"threads", "engine write", "p2KVS write", "engine read", "p2KVS read")
	threadCounts := []int{1, 2, 4, 8, 16}
	if e.Quick {
		threadCounts = []int{1, 4}
	}
	for _, threads := range threadCounts {
		row := []interface{}{threads}
		for _, mode := range []string{"write", "read"} {
			for _, sharded := range []bool{false, true} {
				mem := vfs.NewMem()
				open := func(fs vfs.FS) (kvStore, error) {
					if sharded {
						return openSharded(fs, threads)
					}
					return openSingle(fs, "db")
				}
				if mode == "read" {
					l, err := open(device.WrapFS(mem, device.New(device.Null, 1)))
					if err != nil {
						return nil, err
					}
					if err := preloadKV(l, e.Keys, e.ValueSize); err != nil {
						l.Close()
						return nil, err
					}
					if err := l.Close(); err != nil {
						return nil, err
					}
				}
				scale := scaleFor(device.NVMe)
				s, err := open(device.WrapFS(mem, device.New(device.NVMe, scale)))
				if err != nil {
					return nil, err
				}
				choosers := perThreadUniform(threads, e.Keys)
				res, err := e.measure(threads, scale, func(tid, _ int) error {
					idx := choosers[tid].Next()
					if mode == "read" {
						_, err := s.Get(workload.Key(idx))
						if err == kv.ErrNotFound {
							err = nil
						}
						return err
					}
					return s.Put(workload.Key(idx), workload.Value(idx, e.ValueSize))
				})
				s.Close()
				if err != nil {
					return nil, err
				}
				row = append(row, res.SimQPS)
			}
		}
		// Reorder: engine write, p2 write, engine read, p2 read — rows
		// were appended in that order already.
		tbl.Add(row...)
	}
	tbl.Print(e.Out)
	return tbl, nil
}
