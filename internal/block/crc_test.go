package block

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	for _, content := range [][]byte{
		{},
		[]byte("x"),
		bytes.Repeat([]byte("p2kvs"), 1000),
	} {
		sealed := Seal(append([]byte(nil), content...))
		if len(sealed) != len(content)+TrailerLen {
			t.Fatalf("sealed length %d, want %d", len(sealed), len(content)+TrailerLen)
		}
		got, err := Unseal(sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("round trip = %q, want %q", got, content)
		}
	}
}

func TestUnsealTooShort(t *testing.T) {
	for _, bad := range [][]byte{nil, {}, {1}, {1, 2, 3}} {
		if _, err := Unseal(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Unseal(%v) = %v, want ErrCorrupt", bad, err)
		}
	}
}

// TestSingleBitFlipSweep flips every bit of a sealed block, one at a time,
// and requires each flip to fail verification — content bytes and trailer
// bytes alike. This is the whole point of the trailer: no single-bit rot
// anywhere in the stored block can pass.
func TestSingleBitFlipSweep(t *testing.T) {
	content := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	sealed := Seal(append([]byte(nil), content...))
	for byteIdx := range sealed {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), sealed...)
			mut[byteIdx] ^= 1 << bit
			if _, err := Unseal(mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip of byte %d bit %d passed verification", byteIdx, bit)
			}
		}
	}
}

func TestChecksumIsCastagnoli(t *testing.T) {
	// The CRC-32C polynomial is a cross-component contract: the checkpoint
	// manifest and the repair path both compare file CRCs against
	// block.Checksum. Pin the polynomial so a refactor cannot silently
	// diverge them.
	data := []byte("polynomial pin")
	want := crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli))
	if got := Checksum(data); got != want {
		t.Fatalf("Checksum = %#x, want Castagnoli %#x", got, want)
	}
}

// FuzzBlockRead: arbitrary bytes fed to Unseal must never panic — they
// verify (only when the trailer genuinely matches) or fail with
// ErrCorrupt. Every sealed-block consumer (SST blocks, checkpoint
// verification, repair) funnels through this path.
func FuzzBlockRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(Seal([]byte("seed content")))
	mutated := Seal([]byte("mutated seed"))
	mutated[0] ^= 1
	f.Add(mutated)
	truncated := Seal(bytes.Repeat([]byte("t"), 64))
	f.Add(truncated[:len(truncated)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		content, err := Unseal(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Unseal error %v is not ErrCorrupt", err)
			}
			return
		}
		// Success must mean the trailer actually matches the content.
		if len(data) < TrailerLen {
			t.Fatal("Unseal accepted a block shorter than its trailer")
		}
		if !bytes.Equal(content, data[:len(data)-TrailerLen]) {
			t.Fatal("Unseal returned content that is not the input prefix")
		}
		if !bytes.Equal(Seal(append([]byte(nil), content...)), data) {
			t.Fatal("re-sealing accepted content does not reproduce the input")
		}
	})
}
