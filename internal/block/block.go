// Package block implements the sorted key/value blocks that SSTables are
// made of, using LevelDB's restart-point prefix compression: within a run
// of entries, each key stores only its divergence from the previous key;
// every restartInterval entries a full key is stored and indexed so
// readers can binary-search restarts then scan at most one interval.
package block

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

const restartInterval = 16

// Builder accumulates entries (added in ascending key order) and emits the
// encoded block.
type Builder struct {
	buf      bytes.Buffer
	restarts []uint32
	counter  int
	lastKey  []byte
	entries  int
}

// Add appends an entry. Keys must be strictly ascending.
func (b *Builder) Add(key, value []byte) {
	shared := 0
	if b.counter < restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(b.buf.Len()))
		b.counter = 0
	}
	var tmp [3 * binary.MaxVarintLen32]byte
	n := binary.PutUvarint(tmp[:], uint64(shared))
	n += binary.PutUvarint(tmp[n:], uint64(len(key)-shared))
	n += binary.PutUvarint(tmp[n:], uint64(len(value)))
	b.buf.Write(tmp[:n])
	b.buf.Write(key[shared:])
	b.buf.Write(value)

	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.entries++
}

// EstimatedSize reports the current encoded size.
func (b *Builder) EstimatedSize() int {
	return b.buf.Len() + 4*(len(b.restarts)+2)
}

// Empty reports whether no entries were added.
func (b *Builder) Empty() bool { return b.entries == 0 }

// Entries reports the number of entries added.
func (b *Builder) Entries() int { return b.entries }

// Finish encodes the restart array and returns the complete block.
func (b *Builder) Finish() []byte {
	restarts := append([]uint32{0}, b.restarts...)
	var tmp [4]byte
	for _, r := range restarts {
		binary.LittleEndian.PutUint32(tmp[:], r)
		b.buf.Write(tmp[:])
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(restarts)))
	b.buf.Write(tmp[:])
	return b.buf.Bytes()
}

// Reset clears the builder for reuse.
func (b *Builder) Reset() {
	b.buf.Reset()
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.entries = 0
}

// ---------------------------------------------------------------------------
// Reader / iterator
// ---------------------------------------------------------------------------

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("block: corrupt")

// Iter iterates over an encoded block.
type Iter struct {
	data     []byte // entry region
	restarts []uint32

	off   int // offset of the *next* entry to decode
	key   []byte
	value []byte
	valid bool
	err   error
}

// NewIter parses an encoded block.
func NewIter(block []byte) (*Iter, error) {
	if len(block) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(block[len(block)-4:]))
	tail := 4 + 4*n
	if n < 1 || tail > len(block) {
		return nil, ErrCorrupt
	}
	restartOff := len(block) - tail
	restarts := make([]uint32, n)
	for i := 0; i < n; i++ {
		restarts[i] = binary.LittleEndian.Uint32(block[restartOff+4*i:])
		if int(restarts[i]) > restartOff {
			return nil, ErrCorrupt
		}
	}
	return &Iter{data: block[:restartOff], restarts: restarts}, nil
}

// decodeAt decodes the entry at off given the previous key state in
// it.key; returns the offset of the next entry.
func (it *Iter) decodeAt(off int) (next int, ok bool) {
	if off >= len(it.data) {
		it.valid = false
		return off, false
	}
	shared, n1 := binary.Uvarint(it.data[off:])
	if n1 <= 0 {
		it.err = ErrCorrupt
		it.valid = false
		return off, false
	}
	unshared, n2 := binary.Uvarint(it.data[off+n1:])
	if n2 <= 0 {
		it.err = ErrCorrupt
		it.valid = false
		return off, false
	}
	vlen, n3 := binary.Uvarint(it.data[off+n1+n2:])
	if n3 <= 0 {
		it.err = ErrCorrupt
		it.valid = false
		return off, false
	}
	p := off + n1 + n2 + n3
	end := p + int(unshared) + int(vlen)
	if int(shared) > len(it.key) || end > len(it.data) {
		it.err = ErrCorrupt
		it.valid = false
		return off, false
	}
	it.key = append(it.key[:shared], it.data[p:p+int(unshared)]...)
	it.value = it.data[p+int(unshared) : end]
	it.valid = true
	return end, true
}

// SeekToFirst positions at the first entry.
func (it *Iter) SeekToFirst() {
	it.key = it.key[:0]
	it.off, _ = it.decodeAt(0)
}

// Seek positions at the first entry with key >= target under bytewise
// ordering.
func (it *Iter) Seek(target []byte) { it.SeekWith(bytes.Compare, target) }

// SeekWith positions at the first entry with cmp(key, target) >= 0. The
// block must have been built in cmp order; SSTables use this with the
// internal-key comparator.
func (it *Iter) SeekWith(cmp func(a, b []byte) int, target []byte) {
	// Binary search the restart points for the last restart whose full
	// key is < target.
	lo, hi := 0, len(it.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		it.key = it.key[:0]
		if _, ok := it.decodeAt(int(it.restarts[mid])); !ok {
			return
		}
		if cmp(it.key, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// Linear scan from the chosen restart.
	it.key = it.key[:0]
	off := int(it.restarts[lo])
	for {
		next, ok := it.decodeAt(off)
		if !ok {
			return
		}
		it.off = next
		if cmp(it.key, target) >= 0 {
			return
		}
		off = next
	}
}

// Next advances to the following entry.
func (it *Iter) Next() {
	if !it.valid {
		return
	}
	it.off, _ = it.decodeAt(it.off)
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.valid }

// Key returns the current key (valid until the next call).
func (it *Iter) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.value }

// Err returns the first corruption error encountered.
func (it *Iter) Err() error { return it.err }

// Get is a convenience point lookup inside one block.
func Get(blk, key []byte) ([]byte, bool, error) {
	it, err := NewIter(blk)
	if err != nil {
		return nil, false, err
	}
	it.Seek(key)
	if it.Err() != nil {
		return nil, false, it.Err()
	}
	if it.Valid() && bytes.Equal(it.Key(), key) {
		return it.Value(), true, nil
	}
	return nil, false, nil
}

// String renders a small debug description.
func (it *Iter) String() string {
	return fmt.Sprintf("block.Iter{entries-region=%dB restarts=%d}", len(it.data), len(it.restarts))
}
