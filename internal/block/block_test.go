package block

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func buildBlock(pairs [][2]string) []byte {
	var b Builder
	for _, p := range pairs {
		b.Add([]byte(p[0]), []byte(p[1]))
	}
	return b.Finish()
}

func TestRoundTrip(t *testing.T) {
	pairs := [][2]string{
		{"apple", "1"}, {"apples", "2"}, {"banana", "3"},
		{"bananb", "4"}, {"cherry", "5"},
	}
	blk := buildBlock(pairs)
	it, err := NewIter(blk)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Key()) != pairs[i][0] || string(it.Value()) != pairs[i][1] {
			t.Fatalf("entry %d = %q/%q, want %q/%q", i, it.Key(), it.Value(), pairs[i][0], pairs[i][1])
		}
		i++
	}
	if i != len(pairs) {
		t.Fatalf("iterated %d, want %d", i, len(pairs))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestRestartPointsExercised(t *testing.T) {
	// More entries than the restart interval so multiple restarts exist.
	var pairs [][2]string
	for i := 0; i < 100; i++ {
		pairs = append(pairs, [2]string{fmt.Sprintf("key%04d", i), fmt.Sprintf("v%d", i)})
	}
	blk := buildBlock(pairs)
	it, err := NewIter(blk)
	if err != nil {
		t.Fatal(err)
	}
	if len(it.restarts) < 2 {
		t.Fatalf("expected multiple restarts, got %d", len(it.restarts))
	}
	// Seek to each key exactly.
	for _, p := range pairs {
		it.Seek([]byte(p[0]))
		if !it.Valid() || string(it.Key()) != p[0] {
			t.Fatalf("Seek(%q) landed on %q", p[0], it.Key())
		}
		if string(it.Value()) != p[1] {
			t.Fatalf("Seek(%q) value %q, want %q", p[0], it.Value(), p[1])
		}
	}
	// Seek between keys.
	it.Seek([]byte("key0042x"))
	if !it.Valid() || string(it.Key()) != "key0043" {
		t.Fatalf("between-seek landed on %q", it.Key())
	}
	// Seek past the end.
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestGet(t *testing.T) {
	blk := buildBlock([][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}})
	v, ok, err := Get(blk, []byte("b"))
	if err != nil || !ok || string(v) != "2" {
		t.Fatalf("Get(b) = %q %v %v", v, ok, err)
	}
	_, ok, err = Get(blk, []byte("bb"))
	if err != nil || ok {
		t.Fatalf("Get(bb) found=%v err=%v", ok, err)
	}
}

func TestEmptyValuesAndSharedPrefixes(t *testing.T) {
	pairs := [][2]string{{"k", ""}, {"ka", ""}, {"kaa", "x"}, {"kab", ""}}
	blk := buildBlock(pairs)
	it, _ := NewIter(blk)
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Key()) != pairs[i][0] || string(it.Value()) != pairs[i][1] {
			t.Fatalf("entry %d mismatch: %q/%q", i, it.Key(), it.Value())
		}
		i++
	}
	if i != 4 {
		t.Fatalf("iterated %d", i)
	}
}

func TestCorruptBlocks(t *testing.T) {
	if _, err := NewIter(nil); err == nil {
		t.Fatal("nil block must error")
	}
	if _, err := NewIter([]byte{1, 2, 3}); err == nil {
		t.Fatal("short block must error")
	}
	// A block claiming absurd restart count.
	bad := make([]byte, 16)
	bad[12] = 0xff
	bad[13] = 0xff
	if _, err := NewIter(bad); err == nil {
		t.Fatal("bogus restart count must error")
	}
}

func TestBuilderReset(t *testing.T) {
	var b Builder
	b.Add([]byte("a"), []byte("1"))
	b.Reset()
	if !b.Empty() || b.Entries() != 0 {
		t.Fatal("reset did not clear builder")
	}
	b.Add([]byte("b"), []byte("2"))
	blk := b.Finish()
	v, ok, err := Get(blk, []byte("b"))
	if err != nil || !ok || string(v) != "2" {
		t.Fatal("builder unusable after reset")
	}
}

func TestSeekWithCustomComparator(t *testing.T) {
	// Build in reverse-bytewise order and seek with the matching
	// comparator.
	rev := func(a, b []byte) int { return bytes.Compare(b, a) }
	var b Builder
	keys := []string{"z", "m", "a"}
	for _, k := range keys {
		b.Add([]byte(k), []byte(k))
	}
	it, _ := NewIter(b.Finish())
	it.SeekWith(rev, []byte("n"))
	if !it.Valid() || string(it.Key()) != "m" {
		t.Fatalf("SeekWith landed on %q, want m", it.Key())
	}
}

func TestQuickRoundTripAndSeek(t *testing.T) {
	fn := func(raw map[string]string, probe string) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b Builder
		for _, k := range keys {
			b.Add([]byte(k), []byte(raw[k]))
		}
		it, err := NewIter(b.Finish())
		if err != nil {
			return false
		}
		// Full iteration matches.
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if string(it.Key()) != keys[i] || string(it.Value()) != raw[keys[i]] {
				return false
			}
			i++
		}
		if i != len(keys) || it.Err() != nil {
			return false
		}
		// Seek agrees with sort.SearchStrings.
		idx := sort.SearchStrings(keys, probe)
		it.Seek([]byte(probe))
		if idx == len(keys) {
			return !it.Valid()
		}
		return it.Valid() && string(it.Key()) == keys[idx]
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
