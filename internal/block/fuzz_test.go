package block

import (
	"bytes"
	"testing"
)

// FuzzIterParse: arbitrary bytes fed to the block parser must never
// panic or read out of bounds — they either iterate cleanly or fail with
// ErrCorrupt. (Compactions and reads parse blocks straight from disk, so
// a corrupt file must not crash the engine.)
func FuzzIterParse(f *testing.F) {
	// Seed with a valid block and some mutations.
	var b Builder
	for _, k := range []string{"alpha", "beta", "gamma"} {
		b.Add([]byte(k), []byte("value-"+k))
	}
	valid := b.Finish()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	mutated := append([]byte(nil), valid...)
	mutated[0] ^= 0xff
	f.Add(mutated)
	truncated := valid[:len(valid)/2]
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		it, err := NewIter(data)
		if err != nil {
			return
		}
		count := 0
		for it.SeekToFirst(); it.Valid() && count < 10000; it.Next() {
			_ = it.Key()
			_ = it.Value()
			count++
		}
		// Seeks on arbitrary parsed blocks must also be safe.
		it.Seek([]byte("probe"))
		if it.Valid() {
			_ = it.Key()
		}
	})
}

// FuzzBuilderRoundTrip: any sorted unique key set round-trips.
func FuzzBuilderRoundTrip(f *testing.F) {
	f.Add([]byte("a"), []byte("b"), []byte("c"))
	f.Add([]byte(""), []byte("x"), []byte("xy"))
	f.Fuzz(func(t *testing.T, k1, k2, k3 []byte) {
		keys := [][]byte{k1, k2, k3}
		// Keep only a strictly ascending subsequence.
		var sorted [][]byte
		for _, k := range keys {
			if len(sorted) == 0 || bytes.Compare(k, sorted[len(sorted)-1]) > 0 {
				sorted = append(sorted, k)
			}
		}
		if len(sorted) == 0 {
			return
		}
		var b Builder
		for i, k := range sorted {
			b.Add(k, []byte{byte(i)})
		}
		it, err := NewIter(b.Finish())
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if !bytes.Equal(it.Key(), sorted[i]) {
				t.Fatalf("key %d = %q, want %q", i, it.Key(), sorted[i])
			}
			i++
		}
		if i != len(sorted) {
			t.Fatalf("iterated %d, want %d", i, len(sorted))
		}
	})
}
