package block

import (
	"encoding/binary"
	"hash/crc32"
)

// At-rest integrity: every stored block (SST data/filter/index blocks, and
// anything else that wants the same guarantee) carries a CRC-32C
// (Castagnoli) trailer over its content. The polynomial matches what
// production engines use for the same job (RocksDB, ext4, iSCSI) and
// hash/crc32 computes it with slicing-by-8 (hardware-accelerated where the
// platform supports it), so sealing is nearly free next to the write IO it
// protects.

// TrailerLen is the size of the checksum trailer Seal appends.
const TrailerLen = 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C of data.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Seal appends the CRC-32C trailer to blk and returns the sealed block.
// It may grow blk in place.
func Seal(blk []byte) []byte {
	var tr [TrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], Checksum(blk))
	return append(blk, tr[:]...)
}

// Unseal verifies a sealed block's trailer and returns the content with
// the trailer stripped. It returns ErrCorrupt when the block is too short
// to hold a trailer or the checksum does not match — a flipped bit
// anywhere in the block (content or trailer) fails verification.
func Unseal(sealed []byte) ([]byte, error) {
	if len(sealed) < TrailerLen {
		return nil, ErrCorrupt
	}
	content := sealed[:len(sealed)-TrailerLen]
	want := binary.LittleEndian.Uint32(sealed[len(content):])
	if Checksum(content) != want {
		return nil, ErrCorrupt
	}
	return content, nil
}
