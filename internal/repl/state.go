package repl

import (
	"encoding/binary"
	"fmt"

	"p2kvs/internal/block"
)

// Replica cursor state — the small file a replica persists so a process
// restart can resume the stream with a partial sync instead of a full
// one. It records the lineage (replid) the cursors are meaningful
// against plus the per-worker applied cursors, CRC-sealed so a torn
// write degrades to "no state" (→ full sync), never to a wrong cursor.
//
// The cursors are persisted only after the records they cover were
// applied, so they never run ahead of the replica's applies. Whether
// they can run ahead of the replica's *durable* data is the engine WAL
// policy's call: under SyncOnCommit the apply ack implies fsync, so a
// SIGKILL cannot leave persisted cursors pointing past durable state;
// under weaker policies a crash may lose the applied tail, and the
// resumed stream starts past it — the same durability trade the engine
// itself makes for local writes.

// ErrBadState reports a cursor state blob that failed validation.
var ErrBadState = fmt.Errorf("repl: corrupt cursor state")

// EncodeState serializes a replica's lineage + cursors:
//
//	crc u32 LE  CRC-32C over everything after it
//	uvarint len(replid) + replid
//	EncodeCursors(cursors)
func EncodeState(replid string, cursors []uint64) []byte {
	payload := make([]byte, 0, len(replid)+8*len(cursors)+16)
	payload = binary.AppendUvarint(payload, uint64(len(replid)))
	payload = append(payload, replid...)
	payload = append(payload, EncodeCursors(cursors)...)
	out := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(out, block.Checksum(payload))
	return append(out, payload...)
}

// DecodeState parses a cursor state blob.
func DecodeState(data []byte) (replid string, cursors []uint64, err error) {
	if len(data) < 4 {
		return "", nil, fmt.Errorf("%w: truncated", ErrBadState)
	}
	payload := data[4:]
	if binary.LittleEndian.Uint32(data) != block.Checksum(payload) {
		return "", nil, fmt.Errorf("%w: crc mismatch", ErrBadState)
	}
	idB, rest, err := takeBytes(payload)
	if err != nil {
		return "", nil, fmt.Errorf("%w: replid: %v", ErrBadState, err)
	}
	cursors, err = DecodeCursors(rest)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrBadState, err)
	}
	return string(idB), cursors, nil
}
