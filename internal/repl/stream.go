package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"p2kvs/internal/block"
)

// Wire framing — the replication stream that follows a PSYNC handshake.
// Borrowing the WAL v2 record layout (two CRCs: one sealing the header so
// a torn or flipped length can never cause a mis-sized read, one sealing
// the payload), with the stream-specific kind/worker/gsn fields folded
// into the protected header:
//
//	hcrc   u32 LE  CRC-32C over the remaining 21 header bytes
//	pcrc   u32 LE  CRC-32C over the payload
//	plen   u32 LE
//	kind   u8
//	worker u32 LE
//	gsn    u64 LE
//	payload plen bytes
//
// Every CRC is internal/block's Castagnoli polynomial, same as SST blocks
// and the WAL. A frame that fails any check is ErrFrameCorrupt; the link
// is torn down and the replica resyncs from its cursor — the stream never
// "skips" a damaged frame.

// Frame kinds.
const (
	// FrameData carries one applied write batch: worker + gsn + EncodeOps
	// payload.
	FrameData = iota + 1
	// FrameHeartbeat is primary→replica liveness + progress: payload is
	// the primary's per-worker last-GSN watermarks (EncodeCursors).
	FrameHeartbeat
	// FrameAck is replica→primary progress: payload is the replica's
	// per-worker applied cursors (EncodeCursors). Advances the pin.
	FrameAck
	// FrameFile is one full-sync image file: payload is
	// uvarint(len(name)) + name + content.
	FrameFile
	// FrameManifest terminates a full-sync image: payload is the
	// CHECKPOINT manifest bytes. The replica restores from the received
	// files, then resumes streaming from the manifest's watermarks.
	FrameManifest
)

const frameHeaderLen = 4 + 4 + 4 + 1 + 4 + 8

// MaxFramePayload bounds a frame's payload, protecting the reader from
// hostile or corrupt length prefixes. Full-sync file frames are the
// largest legitimate frames (one per image file).
const MaxFramePayload = 1 << 28

// ErrFrameCorrupt reports a frame that failed CRC verification, carried
// an unknown kind, or declared an impossible length.
var ErrFrameCorrupt = errors.New("repl: corrupt stream frame")

// Frame is one unit of the replication stream.
type Frame struct {
	Kind    byte
	Worker  uint32
	GSN     uint64
	Payload []byte
}

// WriteFrame seals and writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("repl: frame payload %d exceeds limit", len(f.Payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[4:], block.Checksum(f.Payload))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(f.Payload)))
	hdr[12] = f.Kind
	binary.LittleEndian.PutUint32(hdr[13:], f.Worker)
	binary.LittleEndian.PutUint64(hdr[17:], f.GSN)
	binary.LittleEndian.PutUint32(hdr[0:], block.Checksum(hdr[4:]))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads and verifies one frame. Truncation surfaces as
// io.ErrUnexpectedEOF (io.EOF only on a clean boundary); any failed
// check is ErrFrameCorrupt.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != block.Checksum(hdr[4:]) {
		return Frame{}, fmt.Errorf("%w: header crc mismatch", ErrFrameCorrupt)
	}
	plen := binary.LittleEndian.Uint32(hdr[8:])
	if plen > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit", ErrFrameCorrupt, plen)
	}
	f := Frame{
		Kind:   hdr[12],
		Worker: binary.LittleEndian.Uint32(hdr[13:]),
		GSN:    binary.LittleEndian.Uint64(hdr[17:]),
	}
	if f.Kind < FrameData || f.Kind > FrameManifest {
		return Frame{}, fmt.Errorf("%w: unknown kind %d", ErrFrameCorrupt, f.Kind)
	}
	f.Payload = make([]byte, plen)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != block.Checksum(f.Payload) {
		return Frame{}, fmt.Errorf("%w: payload crc mismatch", ErrFrameCorrupt)
	}
	return f, nil
}

// EncodeCursors serializes per-worker GSN cursors (heartbeat and ack
// payloads).
func EncodeCursors(cursors []uint64) []byte {
	buf := make([]byte, 0, (len(cursors)+1)*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, uint64(len(cursors)))
	for _, c := range cursors {
		buf = binary.AppendUvarint(buf, c)
	}
	return buf
}

// DecodeCursors parses a cursor payload.
func DecodeCursors(payload []byte) ([]uint64, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 || n > 1<<16 {
		return nil, fmt.Errorf("%w: bad cursor count", ErrBadPayload)
	}
	payload = payload[used:]
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		c, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, fmt.Errorf("%w: truncated cursor", ErrBadPayload)
		}
		payload = payload[used:]
		out = append(out, c)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing cursor bytes", ErrBadPayload, len(payload))
	}
	return out, nil
}

// EncodeFile serializes a full-sync file frame payload.
func EncodeFile(name string, content []byte) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(name)+len(content))
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = append(buf, content...)
	return buf
}

// DecodeFile parses a full-sync file frame payload. The content aliases
// the payload buffer.
func DecodeFile(payload []byte) (name string, content []byte, err error) {
	nameB, rest, err := takeBytes(payload)
	if err != nil {
		return "", nil, fmt.Errorf("%w: file name: %v", ErrBadPayload, err)
	}
	if len(nameB) == 0 {
		return "", nil, fmt.Errorf("%w: empty file name", ErrBadPayload)
	}
	return string(nameB), rest, nil
}
