package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"p2kvs/internal/kv"
)

// FuzzReplStream throws arbitrary bytes at the replication stream reader
// and the payload decoders. Invariants: no panic, no unbounded
// allocation, and any frame that does decode re-encodes byte-identically
// (so a corrupted stream can never smuggle a frame the writer could not
// have produced). Errors must be the typed rejections: ErrFrameCorrupt,
// ErrBadPayload, or an EOF class.
func FuzzReplStream(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, Frame{Kind: FrameData, Worker: 2, GSN: 99, Payload: EncodeOps([]kv.BatchOp{
		{Kind: kv.OpPut, Key: []byte("k"), Value: []byte("v")},
		{Kind: kv.OpDelete, Key: []byte("d")},
	})})
	_ = WriteFrame(&seed, Frame{Kind: FrameHeartbeat, Payload: EncodeCursors([]uint64{3, 1 << 40})})
	_ = WriteFrame(&seed, Frame{Kind: FrameAck, Payload: EncodeCursors([]uint64{3})})
	_ = WriteFrame(&seed, Frame{Kind: FrameFile, Payload: EncodeFile("inst-00/x", []byte("body"))})
	_ = WriteFrame(&seed, Frame{Kind: FrameManifest, Payload: []byte("manifest")})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(seed.Bytes()[:frameHeaderLen-1]) // torn header
	dup := append(append([]byte{}, seed.Bytes()...), seed.Bytes()...)
	f.Add(dup) // duplicate/stale frames are a stream-layer concern; reader must still parse

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("untyped stream rejection: %v", err)
				}
				break
			}
			// Round-trip: a frame that passed both CRCs re-encodes to the
			// exact bytes the writer would emit.
			var re bytes.Buffer
			if err := WriteFrame(&re, fr); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			switch fr.Kind {
			case FrameData:
				if ops, err := DecodeOps(fr.Payload); err == nil {
					re := EncodeOps(ops)
					if !bytes.Equal(re, fr.Payload) {
						t.Fatalf("op payload not canonical: %x != %x", re, fr.Payload)
					}
				} else if !errors.Is(err, ErrBadPayload) {
					t.Fatalf("untyped payload rejection: %v", err)
				}
			case FrameHeartbeat, FrameAck:
				if cs, err := DecodeCursors(fr.Payload); err == nil {
					if !bytes.Equal(EncodeCursors(cs), fr.Payload) {
						t.Fatal("cursor payload not canonical")
					}
				} else if !errors.Is(err, ErrBadPayload) {
					t.Fatalf("untyped cursor rejection: %v", err)
				}
			case FrameFile:
				if name, content, err := DecodeFile(fr.Payload); err == nil {
					if !bytes.Equal(EncodeFile(name, content), fr.Payload) {
						t.Fatal("file payload not canonical")
					}
				} else if !errors.Is(err, ErrBadPayload) {
					t.Fatalf("untyped file rejection: %v", err)
				}
			}
		}
	})
}
