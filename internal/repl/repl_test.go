package repl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"p2kvs/internal/kv"
)

func ops(n int, tag string) []kv.BatchOp {
	out := make([]kv.BatchOp, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, kv.BatchOp{
			Kind:  kv.OpPut,
			Key:   []byte(fmt.Sprintf("%s-key-%04d", tag, i)),
			Value: []byte(fmt.Sprintf("%s-val-%04d", tag, i)),
		})
	}
	return out
}

func TestEncodeDecodeOpsRoundTrip(t *testing.T) {
	in := []kv.BatchOp{
		{Kind: kv.OpPut, Key: []byte("a"), Value: []byte("1")},
		{Kind: kv.OpDelete, Key: []byte("gone")},
		{Kind: kv.OpPut, Key: []byte(""), Value: []byte("")},
		{Kind: kv.OpPut, Key: bytes.Repeat([]byte("k"), 4096), Value: bytes.Repeat([]byte("v"), 9000)},
	}
	out, err := DecodeOps(EncodeOps(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d ops, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || !bytes.Equal(out[i].Key, in[i].Key) || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("op %d mismatch: %+v != %+v", i, out[i], in[i])
		}
	}
	if got, err := DecodeOps(EncodeOps(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestEncodeOpsCopies(t *testing.T) {
	key := []byte("mutate-me")
	payload := EncodeOps([]kv.BatchOp{{Kind: kv.OpDelete, Key: key}})
	key[0] = 'X'
	out, err := DecodeOps(payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(out[0].Key) != "mutate-me" {
		t.Fatalf("payload aliased caller buffer: %q", out[0].Key)
	}
}

func TestDecodeOpsRejects(t *testing.T) {
	valid := EncodeOps(ops(3, "r"))
	cases := map[string][]byte{
		"empty":           {},
		"truncated":       valid[:len(valid)-2],
		"trailing":        append(append([]byte{}, valid...), 0xff),
		"bad kind":        {1, 99, 1, 'k'},
		"huge op count":   {0xff, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"truncated key":   {1, 1, 10, 'k'},
		"truncated value": {1, 1, 1, 'k', 10, 'v'},
	}
	for name, b := range cases {
		if _, err := DecodeOps(b); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: want ErrBadPayload, got %v", name, err)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Kind: FrameData, Worker: 3, GSN: 42, Payload: EncodeOps(ops(5, "f"))},
		{Kind: FrameHeartbeat, Payload: EncodeCursors([]uint64{1, 2, 3})},
		{Kind: FrameAck, Payload: EncodeCursors([]uint64{0, 0})},
		{Kind: FrameFile, Payload: EncodeFile("inst-00/wal/000001.log", []byte("contents"))},
		{Kind: FrameManifest, Payload: []byte("p2kvs-checkpoint-1\n")},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Worker != want.Worker || got.GSN != want.GSN || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: %+v != %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("expected EOF at stream end")
	}
}

// TestFrameRejectionCatalogue is the deterministic corruption sweep: for
// a known-good two-frame stream, every single-bit flip and every
// truncation point must yield a typed rejection (ErrFrameCorrupt or an
// unexpected-EOF), never a silently wrong frame and never a panic.
func TestFrameRejectionCatalogue(t *testing.T) {
	var buf bytes.Buffer
	f1 := Frame{Kind: FrameData, Worker: 1, GSN: 7, Payload: EncodeOps(ops(2, "c"))}
	f2 := Frame{Kind: FrameHeartbeat, Payload: EncodeCursors([]uint64{7, 9})}
	if err := WriteFrame(&buf, f1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, f2); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncation at every boundary: the cut frame must fail with
	// ErrUnexpectedEOF (or clean EOF exactly at a frame boundary).
	firstLen := frameHeaderLen + len(f1.Payload)
	for cut := 0; cut < len(good); cut++ {
		r := bytes.NewReader(good[:cut])
		var err error
		for err == nil {
			_, err = ReadFrame(r)
		}
		okEOF := err.Error() == "EOF" && (cut == 0 || cut == firstLen)
		if !okEOF && err.Error() != "unexpected EOF" {
			t.Fatalf("cut at %d: want EOF class, got %v", cut, err)
		}
	}

	// Single-bit flips: every flip anywhere in the stream must surface as
	// ErrFrameCorrupt on the affected frame (a flip can never pass both
	// CRCs, and a corrupted length/kind is caught by the header CRC before
	// it can mis-frame the stream).
	for off := 0; off < len(good); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[off] ^= 1 << bit
			r := bytes.NewReader(mut)
			var sawErr error
			for i := 0; i < 3; i++ {
				f, err := ReadFrame(r)
				if err != nil {
					sawErr = err
					break
				}
				// Any frame that does decode must be byte-identical to one
				// of the originals (the flip landed in a frame we already
				// consumed... impossible on first iteration) — verify
				// payload integrity.
				want := f1
				if i == 1 {
					want = f2
				}
				if f.Kind != want.Kind || f.GSN != want.GSN || !bytes.Equal(f.Payload, want.Payload) {
					t.Fatalf("flip @%d.%d: frame %d decoded WRONG without error", off, bit, i)
				}
			}
			if sawErr == nil {
				t.Fatalf("flip @%d.%d: stream fully decoded despite corruption", off, bit)
			}
			if !errors.Is(sawErr, ErrFrameCorrupt) && sawErr.Error() != "unexpected EOF" {
				t.Fatalf("flip @%d.%d: want ErrFrameCorrupt/unexpected EOF, got %v", off, bit, sawErr)
			}
		}
	}
}

func TestBacklogSinceAndCovers(t *testing.T) {
	l := NewLog(2, 1<<20)
	l.Append(0, 1, ops(1, "a"))
	l.Append(1, 2, ops(1, "b"))
	l.Append(0, 3, ops(1, "c"))

	recs, err := l.Since(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].GSN != 1 || recs[1].GSN != 3 {
		t.Fatalf("Since(0,0) = %+v", recs)
	}
	recs, err = l.Since(0, 1)
	if err != nil || len(recs) != 1 || recs[0].GSN != 3 {
		t.Fatalf("Since(0,1) = %+v, %v", recs, err)
	}
	recs, err = l.Since(0, 3)
	if err != nil || len(recs) != 0 {
		t.Fatalf("Since(0,3) = %+v, %v", recs, err)
	}
	if !l.Covers([]uint64{0, 0}) || !l.Covers([]uint64{3, 2}) {
		t.Fatal("fresh log must cover cursors within [0, last]")
	}
	if l.Covers([]uint64{4, 2}) {
		t.Fatal("cursor beyond last must not be covered")
	}
	if l.Covers([]uint64{0}) {
		t.Fatal("wrong worker count must not be covered")
	}
}

func TestBacklogTrimAndOutOfWindow(t *testing.T) {
	l := NewLog(1, 2048)
	var g uint64
	for i := 0; i < 100; i++ {
		g++
		l.Append(0, g, ops(4, "t"))
	}
	st := l.Stats()
	if st.Bytes > 2048 {
		t.Fatalf("budget exceeded without pins: %d", st.Bytes)
	}
	if st.Trimmed == 0 {
		t.Fatal("expected trims")
	}
	if _, err := l.Since(0, 0); !errors.Is(err, ErrOutOfWindow) {
		t.Fatalf("want ErrOutOfWindow for trimmed cursor, got %v", err)
	}
	if l.Covers([]uint64{0}) {
		t.Fatal("trimmed cursor must not be covered")
	}
	// The retained tail must still be contiguous from start+1.
	recs, err := l.Since(0, l.Stats().LastGSN[0]-1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("tail read: %+v, %v", recs, err)
	}
}

// TestSlowReplicaPinNeverHoles is the satellite-1 guarantee: an attached
// replica pins its cursor, so however far it lags — and however small the
// byte budget — a partial sync from its acked cursor never hits a hole.
func TestSlowReplicaPinNeverHoles(t *testing.T) {
	l := NewLog(2, 1024) // tiny budget: would trim almost immediately
	cursors := l.Pin("replica-1")
	var g uint64
	for i := 0; i < 200; i++ {
		g++
		l.Append(int(g)%2, g, ops(4, "p"))
	}
	// Unpinned logs at this budget trim; the pinned one must retain
	// everything past the pin floors.
	for w := 0; w < 2; w++ {
		recs, err := l.Since(w, cursors[w])
		if err != nil {
			t.Fatalf("pinned worker %d: partial sync hit a hole: %v", w, err)
		}
		if len(recs) != 100 {
			t.Fatalf("pinned worker %d: got %d records, want 100", w, len(recs))
		}
		if !l.Covers(l.Stats().LastGSN) {
			t.Fatal("last cursors must be covered")
		}
	}
	if l.Stats().Bytes <= 1024 {
		t.Fatal("expected pin to hold backlog past budget")
	}

	// The replica acks progress: Advance releases the acked prefix for
	// trimming (the still-unacked 50 records stay pinned past the budget).
	l.Advance("replica-1", []uint64{150, 150})
	if st := l.Stats(); st.Records != 50 {
		t.Fatalf("advance did not release acked tail: %+v", st)
	}
	if _, err := l.Since(0, 150); err != nil {
		t.Fatalf("acked cursor must stay in window: %v", err)
	}

	// Detach: the budget alone governs again.
	l.Unpin("replica-1")
	if st := l.Stats(); st.Pins != 0 || st.Bytes > 1024 {
		t.Fatalf("unpin: %+v", st)
	}
}

func TestPinSetAndAdvanceClamp(t *testing.T) {
	l := NewLog(1, 1<<20)
	for g := uint64(1); g <= 10; g++ {
		l.Append(0, g, ops(1, "s"))
	}
	l.Pin("r")
	// SetPin rewinds to a manifest watermark (full-sync bootstrap).
	l.SetPin("r", []uint64{4})
	if recs, err := l.Since(0, 4); err != nil || len(recs) != 6 {
		t.Fatalf("rewound pin: %v %d", err, len(recs))
	}
	// Advance never moves backward.
	l.Advance("r", []uint64{8})
	l.Advance("r", []uint64{2})
	l.Advance("r", []uint64{9})
	// Advancing an unknown pin is a no-op, not a panic.
	l.Advance("ghost", []uint64{1})
	l.SetPin("ghost", []uint64{1})
	l.Unpin("ghost")
}

func TestCursorCodecRoundTrip(t *testing.T) {
	for _, in := range [][]uint64{nil, {}, {0}, {1, 1 << 60, 42}} {
		out, err := DecodeCursors(EncodeCursors(in))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(in) {
			t.Fatalf("len %d != %d", len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("cursor %d: %d != %d", i, out[i], in[i])
			}
		}
	}
	for _, bad := range [][]byte{{}, {5, 1}, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff}} {
		if _, err := DecodeCursors(bad); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("want ErrBadPayload for %x, got %v", bad, err)
		}
	}
}

func TestFileCodecRoundTrip(t *testing.T) {
	name, content, err := DecodeFile(EncodeFile("inst-03/sst/000042.sst", []byte{0, 1, 2}))
	if err != nil || name != "inst-03/sst/000042.sst" || !bytes.Equal(content, []byte{0, 1, 2}) {
		t.Fatalf("%q %x %v", name, content, err)
	}
	if _, _, err := DecodeFile(EncodeFile("", nil)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty name must be rejected: %v", err)
	}
	if _, _, err := DecodeFile([]byte{200}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated name must be rejected: %v", err)
	}
}

func TestNewIDUnique(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 40 || a == b {
		t.Fatalf("ids: %q %q", a, b)
	}
	if l := NewLog(1, 0); l.ID() == "" || l.Workers() != 1 {
		t.Fatal("log identity")
	}
}
