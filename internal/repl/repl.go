// Package repl implements GSN log-shipping replication: the primary's
// accessing layer appends every applied write batch — tagged with the
// Global Sequence Number the worker assigned at apply time — into a
// bounded per-worker backlog (Log), and replicas tail that backlog over a
// CRC-guarded streaming protocol (stream.go) from per-worker GSN cursors.
//
// The cursor is exactly the CHECKPOINT manifest's per-worker lastGSN
// watermark: a replica bootstraps from a backup image, reads the
// watermarks out of the manifest, and resumes the stream from there. A
// replica that falls out of the retained window (the -repl_backlog
// budget) cannot partial-sync — Since reports ErrOutOfWindow and the
// primary falls back to a full sync — but an *attached* replica pins its
// cursor, which defers tail truncation past it, so a slow replica that
// stays connected never resyncs into a hole (mirroring the checkpoint
// pins that defer SST deletion against the compaction scheduler).
package repl

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"p2kvs/internal/kv"
)

// ErrOutOfWindow reports a partial-sync cursor older than the backlog's
// retained tail: the records between the cursor and the tail have been
// trimmed, so resuming would silently skip writes. The caller must fall
// back to a full sync.
var ErrOutOfWindow = errors.New("repl: cursor out of retained backlog window")

// DefaultBacklogBytes is the default retention budget (per store, across
// all workers) when the caller does not configure one.
const DefaultBacklogBytes = 16 << 20

// Record is one applied write batch of one worker: the unit of shipping.
// Payload is the encoded op list (EncodeOps), owned by the record.
type Record struct {
	Worker  int
	GSN     uint64
	Payload []byte
}

func (r Record) size() int64 { return int64(len(r.Payload)) + 24 }

// NewID generates a replication lineage ID (the Redis "replid" idea): a
// fresh one per Log, so a cursor is only meaningful against the lineage
// that produced it. A primary restart produces a new Log and therefore a
// new ID, forcing replicas of the old lineage through a full sync.
func NewID() string {
	var b [20]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// constant that can never match a real ID.
		return "0000000000000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Stats is a point-in-time counter snapshot of a Log.
type Stats struct {
	ID       string
	Workers  int
	MaxBytes int64
	// Bytes / Records are the backlog's current retained size.
	Bytes   int64
	Records int64
	// Appended / Trimmed count records over the log's lifetime.
	Appended int64
	Trimmed  int64
	// Pins is the number of attached cursors currently deferring trims.
	Pins int
	// LastGSN[w] is the highest GSN appended for worker w.
	LastGSN []uint64
}

// Log is the primary-side replication backlog: per-worker ordered record
// queues under one retention budget, with pinned cursors that defer tail
// truncation while a replica is attached.
type Log struct {
	id       string
	workers  int
	maxBytes int64

	mu    sync.Mutex
	q     [][]Record          // per-worker records, ascending GSN
	start []uint64            // floor[w]: records with GSN <= start[w] are trimmed
	last  []uint64            // highest appended GSN per worker
	pins  map[string][]uint64 // pin id -> per-worker cursor floors
	bytes int64
	recs  int64
	wake  chan struct{} // closed and replaced on every append

	appended atomic.Int64
	trimmed  atomic.Int64
}

// NewLog creates a backlog for a store with the given worker count.
// maxBytes <= 0 selects DefaultBacklogBytes.
func NewLog(workers int, maxBytes int64) *Log {
	if workers < 1 {
		workers = 1
	}
	if maxBytes <= 0 {
		maxBytes = DefaultBacklogBytes
	}
	return &Log{
		id:       NewID(),
		workers:  workers,
		maxBytes: maxBytes,
		q:        make([][]Record, workers),
		start:    make([]uint64, workers),
		last:     make([]uint64, workers),
		pins:     make(map[string][]uint64),
		wake:     make(chan struct{}),
	}
}

// ID reports the log's replication lineage ID.
func (l *Log) ID() string { return l.id }

// Workers reports the worker count the log was sized for.
func (l *Log) Workers() int { return l.workers }

// Append records one applied write batch. ops are encoded (copied) into
// the record, so the caller's slices are not retained. Called from the
// owning worker's goroutine, so per-worker GSNs arrive in ascending
// apply order.
func (l *Log) Append(worker int, gsn uint64, ops []kv.BatchOp) {
	rec := Record{Worker: worker, GSN: gsn, Payload: EncodeOps(ops)}
	l.mu.Lock()
	l.q[worker] = append(l.q[worker], rec)
	l.last[worker] = gsn
	l.bytes += rec.size()
	l.recs++
	l.appended.Add(1)
	l.trimLocked()
	wake := l.wake
	l.wake = make(chan struct{})
	l.mu.Unlock()
	close(wake)
}

// trimLocked evicts the oldest records until the budget holds, skipping
// records still covered by a pin: an attached replica's cursor defers
// truncation past it, even beyond the byte budget.
func (l *Log) trimLocked() {
	for l.bytes > l.maxBytes {
		// Oldest record across workers = smallest head GSN (GSNs are drawn
		// from one global counter, so cross-worker comparison orders by
		// apply time).
		w := -1
		var min uint64
		for i := range l.q {
			if len(l.q[i]) == 0 {
				continue
			}
			head := l.q[i][0].GSN
			if l.pinnedLocked(i, head) {
				continue
			}
			if w < 0 || head < min {
				w, min = i, head
			}
		}
		if w < 0 {
			return // everything left is pinned; budget yields to attachment
		}
		rec := l.q[w][0]
		l.q[w] = l.q[w][1:]
		l.start[w] = rec.GSN
		l.bytes -= rec.size()
		l.recs--
		l.trimmed.Add(1)
	}
}

// pinnedLocked reports whether worker w's record at gsn is protected by
// any pin (pin floor < gsn means the pinned replica still needs it).
func (l *Log) pinnedLocked(w int, gsn uint64) bool {
	for _, floors := range l.pins {
		if gsn > floors[w] {
			return true
		}
	}
	return false
}

// Pin attaches a cursor set that defers trimming: every record appended
// from now on (plus everything currently retained newer than each
// worker's current watermark) stays until the pin advances past it.
// Returns the pinned floors (the current per-worker watermarks).
func (l *Log) Pin(id string) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	floors := make([]uint64, l.workers)
	copy(floors, l.last)
	l.pins[id] = floors
	out := make([]uint64, l.workers)
	copy(out, floors)
	return out
}

// Advance moves a pin's floors forward (a replica acknowledged applying
// through these cursors). Floors never move backward.
func (l *Log) Advance(id string, cursors []uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	floors, ok := l.pins[id]
	if !ok {
		return
	}
	for w := 0; w < l.workers && w < len(cursors); w++ {
		if cursors[w] > floors[w] {
			floors[w] = cursors[w]
		}
	}
	l.trimLocked()
}

// SetPin rewinds or sets a pin's floors exactly (full-sync bootstrap: the
// checkpoint manifest's watermarks replace the attach-time floors).
// Unlike Advance it may move floors backward, but never below the trimmed
// tail — records already gone cannot be re-pinned.
func (l *Log) SetPin(id string, cursors []uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	floors, ok := l.pins[id]
	if !ok {
		return
	}
	for w := 0; w < l.workers && w < len(cursors); w++ {
		c := cursors[w]
		if c < l.start[w] {
			c = l.start[w]
		}
		floors[w] = c
	}
	l.trimLocked()
}

// Unpin detaches a cursor set; the retention budget alone governs the
// tail again.
func (l *Log) Unpin(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.pins, id)
	l.trimLocked()
}

// Covers reports whether a partial sync from the given per-worker
// cursors can be served without a hole: every cursor must be at or above
// the trimmed floor and at or below the last appended GSN.
func (l *Log) Covers(cursors []uint64) bool {
	if len(cursors) != l.workers {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for w, c := range cursors {
		if c < l.start[w] || c > l.last[w] {
			return false
		}
	}
	return true
}

// Since returns (copies of) every retained record of worker w with GSN >
// cursor, in apply order. ErrOutOfWindow reports a trimmed hole between
// the cursor and the retained tail.
func (l *Log) Since(w int, cursor uint64) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < l.start[w] {
		return nil, fmt.Errorf("%w: worker %d cursor %d < retained floor %d", ErrOutOfWindow, w, cursor, l.start[w])
	}
	q := l.q[w]
	// Records are ascending; find the first with GSN > cursor.
	lo, hi := 0, len(q)
	for lo < hi {
		mid := (lo + hi) / 2
		if q[mid].GSN > cursor {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(q) {
		return nil, nil
	}
	out := make([]Record, len(q)-lo)
	copy(out, q[lo:])
	return out, nil
}

// Wait returns a channel closed at (or after) the next Append — the
// stream feeder's wake-up. Callers re-check Since after each wake.
func (l *Log) Wait() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wake
}

// LastGSN reports the highest appended GSN per worker.
func (l *Log) LastGSN() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, l.workers)
	copy(out, l.last)
	return out
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		ID:       l.id,
		Workers:  l.workers,
		MaxBytes: l.maxBytes,
		Bytes:    l.bytes,
		Records:  l.recs,
		Appended: l.appended.Load(),
		Trimmed:  l.trimmed.Load(),
		Pins:     len(l.pins),
		LastGSN:  make([]uint64, l.workers),
	}
	copy(st.LastGSN, l.last)
	return st
}
