package repl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"p2kvs/internal/kv"
)

// Op payload encoding — the body of a data frame. Self-describing and
// length-prefixed so a decoder can reject any truncation or corruption
// the frame CRC somehow missed:
//
//	nops  uvarint
//	per op:
//	  kind  byte            (kv.OpPut | kv.OpDelete)
//	  klen  uvarint, key    bytes
//	  vlen  uvarint, value  bytes   (puts only)
//
// Encoded payloads are owned by the record: EncodeOps copies key/value
// bytes out of the caller's buffers (the RESP reader and OBM batches
// recycle theirs).

// ErrBadPayload reports a data-frame payload that does not decode to a
// well-formed op list.
var ErrBadPayload = errors.New("repl: malformed op payload")

// maxOpsPerRecord bounds decode-side allocation against hostile nops
// prefixes. The accessing layer's MaxBatch is ≤ 1024; anything larger is
// corruption, not load.
const maxOpsPerRecord = 1 << 16

// EncodeOps serializes a batch's ops into an owned payload.
func EncodeOps(ops []kv.BatchOp) []byte {
	n := binary.MaxVarintLen64
	for _, op := range ops {
		n += 1 + 2*binary.MaxVarintLen64 + len(op.Key) + len(op.Value)
	}
	buf := make([]byte, 0, n)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		if op.Kind == kv.OpPut {
			buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
			buf = append(buf, op.Value...)
		}
	}
	return buf
}

// DecodeOps parses a payload back into ops. The returned ops alias the
// payload buffer; callers that outlive it must copy.
func DecodeOps(payload []byte) ([]kv.BatchOp, error) {
	nops, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad op count", ErrBadPayload)
	}
	payload = payload[n:]
	if nops > maxOpsPerRecord {
		return nil, fmt.Errorf("%w: op count %d exceeds limit", ErrBadPayload, nops)
	}
	ops := make([]kv.BatchOp, 0, nops)
	for i := uint64(0); i < nops; i++ {
		if len(payload) < 1 {
			return nil, fmt.Errorf("%w: truncated op kind", ErrBadPayload)
		}
		kind := kv.OpKind(payload[0])
		payload = payload[1:]
		if kind != kv.OpPut && kind != kv.OpDelete {
			return nil, fmt.Errorf("%w: unknown op kind %d", ErrBadPayload, kind)
		}
		key, rest, err := takeBytes(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: key: %v", ErrBadPayload, err)
		}
		payload = rest
		op := kv.BatchOp{Kind: kind, Key: key}
		if kind == kv.OpPut {
			val, rest, err := takeBytes(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: value: %v", ErrBadPayload, err)
			}
			payload = rest
			op.Value = val
		}
		ops = append(ops, op)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(payload))
	}
	return ops, nil
}

func takeBytes(b []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, errors.New("bad length prefix")
	}
	b = b[n:]
	if uint64(len(b)) < l {
		return nil, nil, errors.New("truncated bytes")
	}
	return b[:l], b[l:], nil
}
