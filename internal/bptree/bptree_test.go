package bptree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGetDelete(t *testing.T) {
	tr := New[string]()
	tr.Set([]byte("b"), "2")
	tr.Set([]byte("a"), "1")
	tr.Set([]byte("c"), "3")
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	if v, ok := tr.Get([]byte("b")); !ok || v != "2" {
		t.Fatalf("Get(b) = %q %v", v, ok)
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("found absent key")
	}
	tr.Set([]byte("b"), "2b")
	if v, _ := tr.Get([]byte("b")); v != "2b" {
		t.Fatal("overwrite lost")
	}
	if tr.Len() != 3 {
		t.Fatal("overwrite changed len")
	}
	if !tr.Delete([]byte("b")) {
		t.Fatal("delete failed")
	}
	if tr.Delete([]byte("b")) {
		t.Fatal("double delete reported success")
	}
	if _, ok := tr.Get([]byte("b")); ok {
		t.Fatal("deleted key still present")
	}
	if tr.Len() != 2 {
		t.Fatalf("len after delete = %d", tr.Len())
	}
}

func TestManyKeysSplits(t *testing.T) {
	tr := New[int]()
	const n = 20000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Set([]byte(fmt.Sprintf("key%08d", i)), i)
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < n; i += 371 {
		v, ok := tr.Get([]byte(fmt.Sprintf("key%08d", i)))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d %v", i, v, ok)
		}
	}
	// Ordered full scan.
	prev := ""
	count := 0
	tr.Ascend(nil, func(k []byte, v int) bool {
		if prev != "" && string(k) <= prev {
			t.Fatalf("out of order: %q after %q", k, prev)
		}
		prev = string(k)
		count++
		return true
	})
	if count != n {
		t.Fatalf("scanned %d", count)
	}
	if tr.ApproxBytes() <= 0 {
		t.Fatal("ApproxBytes must be positive")
	}
}

func TestAscendFromStart(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i += 2 {
		tr.Set([]byte(fmt.Sprintf("k%04d", i)), i)
	}
	var got []int
	tr.Ascend([]byte("k0501"), func(k []byte, v int) bool {
		got = append(got, v)
		return len(got) < 5
	})
	want := []int{502, 504, 506, 508, 510}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Set([]byte(fmt.Sprintf("k%03d", i)), i)
	}
	n := 0
	tr.Ascend(nil, func([]byte, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("visited %d", n)
	}
}

func TestKeyNotAliased(t *testing.T) {
	tr := New[int]()
	k := []byte("mutate")
	tr.Set(k, 1)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutate")); !ok {
		t.Fatal("tree aliased caller's key buffer")
	}
}

func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Key    uint16
		Val    int
		Delete bool
	}
	fn := func(ops []op, probe uint16) bool {
		tr := New[int]()
		model := map[string]int{}
		for _, o := range ops {
			k := fmt.Sprintf("k%05d", o.Key)
			if o.Delete {
				delete(model, k)
				tr.Delete([]byte(k))
			} else {
				model[k] = o.Val
				tr.Set([]byte(k), o.Val)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, want := range model {
			if v, ok := tr.Get([]byte(k)); !ok || v != want {
				return false
			}
		}
		// Ascend yields exactly the sorted model keys.
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okScan := true
		tr.Ascend(nil, func(k []byte, v int) bool {
			if i >= len(keys) || string(k) != keys[i] || v != model[keys[i]] {
				okScan = false
				return false
			}
			i++
			return true
		})
		if !okScan || i != len(keys) {
			return false
		}
		// Probe must agree with the model.
		pk := fmt.Sprintf("k%05d", probe)
		v, ok := tr.Get([]byte(pk))
		want, wantOk := model[pk]
		return ok == wantOk && (!ok || v == want)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
