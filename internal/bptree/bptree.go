// Package bptree implements an in-memory B+-tree with byte-string keys.
// It is the ordered index substrate for the two non-LSM engines the paper
// compares against: KVell keeps one such tree per worker mapping keys to
// slab locations (§5.5), and the WiredTiger-style engine uses it as its
// in-memory row store between checkpoints.
package bptree

import "bytes"

const order = 64 // max children per inner node; leaves hold order-1 items

// Tree is a single-writer B+-tree. Concurrent readers are safe only with
// external synchronization (both consuming engines are per-worker
// single-threaded or hold a store lock, matching the systems they model).
type Tree[V any] struct {
	root  node[V]
	size  int
	bytes int64 // approximate memory footprint of keys
}

type node[V any] interface {
	isLeaf() bool
}

type leaf[V any] struct {
	keys [][]byte
	vals []V
	next *leaf[V]
}

func (*leaf[V]) isLeaf() bool { return true }

type inner[V any] struct {
	// keys[i] is the smallest key reachable via children[i+1].
	keys     [][]byte
	children []node[V]
}

func (*inner[V]) isLeaf() bool { return false }

// New creates an empty tree.
func New[V any]() *Tree[V] {
	return &Tree[V]{root: &leaf[V]{}}
}

// Len reports the number of keys.
func (t *Tree[V]) Len() int { return t.size }

// ApproxBytes reports the approximate memory held by keys (Figure 21b's
// in-memory-index accounting).
func (t *Tree[V]) ApproxBytes() int64 { return t.bytes + int64(t.size)*32 }

// findLeaf descends to the leaf that may contain key.
func (t *Tree[V]) findLeaf(key []byte) *leaf[V] {
	n := t.root
	for !n.isLeaf() {
		in := n.(*inner[V])
		idx := 0
		for idx < len(in.keys) && bytes.Compare(key, in.keys[idx]) >= 0 {
			idx++
		}
		n = in.children[idx]
	}
	return n.(*leaf[V])
}

// Get returns the value for key.
func (t *Tree[V]) Get(key []byte) (V, bool) {
	l := t.findLeaf(key)
	for i, k := range l.keys {
		switch bytes.Compare(k, key) {
		case 0:
			return l.vals[i], true
		case 1:
			var zero V
			return zero, false
		}
	}
	var zero V
	return zero, false
}

// Set inserts or overwrites key.
func (t *Tree[V]) Set(key []byte, val V) {
	promoted, right := t.insert(t.root, key, val)
	if right != nil {
		t.root = &inner[V]{keys: [][]byte{promoted}, children: []node[V]{t.root, right}}
	}
}

// insert recursively inserts; on split it returns the separator key and
// the new right sibling.
func (t *Tree[V]) insert(n node[V], key []byte, val V) ([]byte, node[V]) {
	if n.isLeaf() {
		l := n.(*leaf[V])
		idx := 0
		for idx < len(l.keys) && bytes.Compare(l.keys[idx], key) < 0 {
			idx++
		}
		if idx < len(l.keys) && bytes.Equal(l.keys[idx], key) {
			l.vals[idx] = val
			return nil, nil
		}
		kcopy := append([]byte(nil), key...)
		l.keys = append(l.keys, nil)
		copy(l.keys[idx+1:], l.keys[idx:])
		l.keys[idx] = kcopy
		var zero V
		l.vals = append(l.vals, zero)
		copy(l.vals[idx+1:], l.vals[idx:])
		l.vals[idx] = val
		t.size++
		t.bytes += int64(len(key))
		if len(l.keys) < order {
			return nil, nil
		}
		// Split the leaf.
		mid := len(l.keys) / 2
		right := &leaf[V]{
			keys: append([][]byte(nil), l.keys[mid:]...),
			vals: append([]V(nil), l.vals[mid:]...),
			next: l.next,
		}
		l.keys = l.keys[:mid:mid]
		l.vals = l.vals[:mid:mid]
		l.next = right
		return right.keys[0], right
	}

	in := n.(*inner[V])
	idx := 0
	for idx < len(in.keys) && bytes.Compare(key, in.keys[idx]) >= 0 {
		idx++
	}
	promoted, right := t.insert(in.children[idx], key, val)
	if right == nil {
		return nil, nil
	}
	in.keys = append(in.keys, nil)
	copy(in.keys[idx+1:], in.keys[idx:])
	in.keys[idx] = promoted
	in.children = append(in.children, nil)
	copy(in.children[idx+2:], in.children[idx+1:])
	in.children[idx+1] = right
	if len(in.children) <= order {
		return nil, nil
	}
	// Split the inner node.
	midIdx := len(in.keys) / 2
	sep := in.keys[midIdx]
	rightNode := &inner[V]{
		keys:     append([][]byte(nil), in.keys[midIdx+1:]...),
		children: append([]node[V](nil), in.children[midIdx+1:]...),
	}
	in.keys = in.keys[:midIdx:midIdx]
	in.children = in.children[: midIdx+1 : midIdx+1]
	return sep, rightNode
}

// Delete removes key, reporting whether it was present. Leaves are
// allowed to underflow (no rebalancing): both consuming engines tolerate
// sparse leaves, and deletions in the modeled workloads are rare.
func (t *Tree[V]) Delete(key []byte) bool {
	l := t.findLeaf(key)
	for i, k := range l.keys {
		if bytes.Equal(k, key) {
			l.keys = append(l.keys[:i], l.keys[i+1:]...)
			l.vals = append(l.vals[:i], l.vals[i+1:]...)
			t.size--
			t.bytes -= int64(len(key))
			return true
		}
	}
	return false
}

// Ascend walks entries with key >= start (nil = from the beginning) in
// order, until fn returns false.
func (t *Tree[V]) Ascend(start []byte, fn func(key []byte, val V) bool) {
	var l *leaf[V]
	if start == nil {
		n := t.root
		for !n.isLeaf() {
			n = n.(*inner[V]).children[0]
		}
		l = n.(*leaf[V])
	} else {
		l = t.findLeaf(start)
	}
	for l != nil {
		for i, k := range l.keys {
			if start != nil && bytes.Compare(k, start) < 0 {
				continue
			}
			if !fn(k, l.vals[i]) {
				return
			}
		}
		l = l.next
	}
}
