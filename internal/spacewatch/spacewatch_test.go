package spacewatch

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWatchdogResumesWhenProbeSucceeds(t *testing.T) {
	var degraded, space, resumed atomic.Bool
	degraded.Store(true)
	w := New(
		degraded.Load,
		space.Load,
		func() { resumed.Store(true); degraded.Store(false) },
		time.Millisecond, 4*time.Millisecond,
	)
	defer w.Close()

	w.Kick()
	time.Sleep(20 * time.Millisecond)
	if resumed.Load() {
		t.Fatal("resumed before space freed")
	}
	space.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for !resumed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never resumed after space freed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWatchdogStopsWhenResumedByHand(t *testing.T) {
	var degraded atomic.Bool
	var probes, resumes atomic.Int64
	degraded.Store(true)
	w := New(
		degraded.Load,
		func() bool { probes.Add(1); return false },
		func() { resumes.Add(1) },
		time.Millisecond, 2*time.Millisecond,
	)
	defer w.Close()

	w.Kick()
	time.Sleep(10 * time.Millisecond)
	degraded.Store(false) // manual Resume
	time.Sleep(10 * time.Millisecond)
	n := probes.Load()
	time.Sleep(20 * time.Millisecond)
	if probes.Load() != n {
		t.Fatal("watchdog kept probing after manual resume")
	}
	if resumes.Load() != 0 {
		t.Fatal("watchdog resumed an engine that was no longer degraded")
	}
}

func TestWatchdogCloseUnblocks(t *testing.T) {
	var trues atomic.Bool
	trues.Store(true)
	w := New(trues.Load, func() bool { return false }, func() {}, time.Millisecond, time.Millisecond)
	w.Kick()
	time.Sleep(5 * time.Millisecond)
	done := make(chan struct{})
	go func() { w.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung")
	}
}
