// Package spacewatch provides the disk-full auto-resume watchdog shared
// by the storage engines. When an engine degrades to read-only because of
// space exhaustion it kicks its watchdog; the watchdog polls with capped
// exponential backoff until either the engine is no longer disk-full
// degraded (someone resumed it by hand) or a probe shows writes succeed
// again, at which point it invokes the engine's resume hook. The single
// goroutine is started at engine open and parked on a channel, so kicking
// never races engine shutdown.
package spacewatch

import (
	"sync"
	"time"
)

// Watchdog polls for freed space on behalf of one engine instance.
type Watchdog struct {
	degraded func() bool // still disk-full degraded?
	probe    func() bool // does a small durable write succeed now?
	resume   func()      // clear the degraded state
	base     time.Duration
	max      time.Duration

	kickC chan struct{}
	stopC chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// New starts a watchdog goroutine. degraded reports whether the engine is
// still in disk-full read-only mode; probe attempts a small durable write
// and reports success; resume is called once the probe succeeds while
// still degraded. base/max bound the poll backoff (defaults 5ms/1s).
func New(degraded, probe func() bool, resume func(), base, max time.Duration) *Watchdog {
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	w := &Watchdog{
		degraded: degraded,
		probe:    probe,
		resume:   resume,
		base:     base,
		max:      max,
		kickC:    make(chan struct{}, 1),
		stopC:    make(chan struct{}),
	}
	w.wg.Add(1)
	go w.run()
	return w
}

// Kick wakes the watchdog after the engine enters disk-full degraded
// mode. Multiple kicks coalesce; kicking a closed watchdog is a no-op.
func (w *Watchdog) Kick() {
	select {
	case w.kickC <- struct{}{}:
	default:
	}
}

// Close stops the watchdog and waits for its goroutine to exit.
func (w *Watchdog) Close() {
	w.once.Do(func() { close(w.stopC) })
	w.wg.Wait()
}

func (w *Watchdog) run() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stopC:
			return
		case <-w.kickC:
		}
		delay := w.base
		for {
			t := time.NewTimer(delay)
			select {
			case <-w.stopC:
				t.Stop()
				return
			case <-t.C:
			}
			if !w.degraded() {
				break // resumed by hand (or never actually degraded)
			}
			if w.probe() {
				w.resume()
				break
			}
			if delay *= 2; delay > w.max {
				delay = w.max
			}
		}
	}
}
