package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"p2kvs/internal/block"
	"p2kvs/internal/bloom"
	"p2kvs/internal/ikey"
	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// writeV1Table hand-writes a legacy (format v1, unchecksummed) table: raw
// unsealed blocks and the 48-byte footer. The current writer only emits
// v2, so this is what a table written before the checksum format looks
// like on disk.
func writeV1Table(t *testing.T, fs vfs.FS, name string, pairs [][2]string) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	var (
		off     int64
		index   block.Builder
		data    block.Builder
		ukeys   [][]byte
		lastKey []byte
	)
	write := func(p []byte) {
		if _, err := f.Write(p); err != nil {
			t.Fatal(err)
		}
		off += int64(len(p))
	}
	flush := func() {
		if data.Empty() {
			return
		}
		blk := data.Finish()
		blkOff := off
		write(blk)
		var handle [2 * binary.MaxVarintLen64]byte
		n := binary.PutUvarint(handle[:], uint64(blkOff))
		n += binary.PutUvarint(handle[n:], uint64(len(blk)))
		index.Add(lastKey, handle[:n])
		data.Reset()
	}
	for i, p := range pairs {
		ik := ikey.Make([]byte(p[0]), uint64(i+1), ikey.KindSet)
		lastKey = append(lastKey[:0], ik...)
		ukeys = append(ukeys, []byte(p[0]))
		data.Add(ik, []byte(p[1]))
		if data.EstimatedSize() >= targetBlockSize {
			flush()
		}
	}
	flush()
	filterOff := off
	filterBlk := bloom.New(10).Build(ukeys)
	write(filterBlk)
	indexOff := off
	indexBlk := index.Finish()
	write(indexBlk)
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(filterOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(filterBlk)))
	binary.LittleEndian.PutUint64(footer[16:], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(indexBlk)))
	binary.LittleEndian.PutUint64(footer[32:], uint64(len(pairs)))
	binary.LittleEndian.PutUint64(footer[40:], tableMagic)
	write(footer[:])
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestV1TableStillReadable: tables written before the checksum format must
// keep serving — format detection is by footer magic, and the v1 path
// skips trailer verification it has no trailers for.
func TestV1TableStillReadable(t *testing.T) {
	fs := vfs.NewMem()
	pairs := sortedPairs(3000) // multi-block
	writeV1Table(t, fs, "v1.sst", pairs)

	f, err := fs.Open("v1.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenNamed(f, nil, 0, "v1.sst")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.sealed {
		t.Fatal("v1 table mis-detected as sealed v2")
	}
	if r.Entries() != len(pairs) {
		t.Fatalf("Entries = %d, want %d", r.Entries(), len(pairs))
	}
	for _, idx := range []int{0, 1, 1499, 2998, 2999} {
		v, _, found, _, err := r.Get([]byte(pairs[idx][0]), ikey.MaxSeq)
		if err != nil || !found || string(v) != pairs[idx][1] {
			t.Fatalf("Get(%q) = %q %v %v", pairs[idx][0], v, found, err)
		}
	}
	it := r.NewIterator()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		n++
	}
	if it.Err() != nil || n != len(pairs) {
		t.Fatalf("iterated %d (err %v), want %d", n, it.Err(), len(pairs))
	}
	// Verify still runs structurally on v1 (handles parse, blocks read).
	if _, err := r.Verify(); err != nil {
		t.Fatalf("structural Verify of clean v1 table: %v", err)
	}
}

// TestV2FlipSweep flips single bits across the whole file and requires
// every flip to be detected at Open or Verify — except in the footer's
// 4 dead padding bytes, which no reader consumes. A Get of every key must
// meanwhile never return a wrong value.
func TestV2FlipSweep(t *testing.T) {
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 7)
	pairs := sortedPairs(600) // a few data blocks
	for i, p := range pairs {
		if err := w.Add(ikey.Make([]byte(p[0]), uint64(i+1), ikey.KindSet), []byte(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	pristine, err := vfs.ReadFile(fs, "t.sst")
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(pristine))
	padStart, padEnd := size-12, size-8 // footer pad u32: not covered, not consumed

	// Sweeping every (offset, bit) is ~size*8 table opens; stride through
	// offsets and rotate the bit position instead — every region of the
	// file still gets hit.
	for off := int64(0); off < size; off += 13 {
		if off >= padStart && off < padEnd {
			continue
		}
		bit := byte(1 << (off % 8))
		mut := append([]byte(nil), pristine...)
		mut[off] ^= bit
		name := fmt.Sprintf("mut-%d.sst", off)
		mf, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		mf.Write(mut)
		mf.Close()

		rf, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenNamed(rf, nil, 0, name)
		if err != nil {
			// Detected at open (footer/index/filter damage) — must be a
			// corruption report, not a panic or a wrong parse.
			if !errors.Is(err, kv.ErrCorruption) {
				t.Fatalf("off %d: open error %v is not ErrCorruption", off, err)
			}
			rf.Close()
			fs.Remove(name)
			continue
		}
		if _, verr := r.Verify(); !errors.Is(verr, kv.ErrCorruption) {
			t.Fatalf("off %d: flip not detected by Verify (err %v)", off, verr)
		}
		// Reads during the damage must never produce a wrong value.
		for _, idx := range []int{0, 299, 599} {
			v, _, found, _, gerr := r.Get([]byte(pairs[idx][0]), ikey.MaxSeq)
			if gerr != nil {
				if !errors.Is(gerr, kv.ErrCorruption) {
					t.Fatalf("off %d: Get error %v is not ErrCorruption", off, gerr)
				}
				continue
			}
			if found && !bytes.Equal(v, []byte(pairs[idx][1])) {
				t.Fatalf("off %d: Get(%q) served wrong value %q", off, pairs[idx][0], v)
			}
		}
		r.Close()
		fs.Remove(name)
	}
}
