package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"p2kvs/internal/block"
	"p2kvs/internal/bloom"
	"p2kvs/internal/cache"
	"p2kvs/internal/ikey"
	"p2kvs/internal/vfs"
)

// ErrCorrupt reports a malformed table.
var ErrCorrupt = errors.New("sstable: corrupt")

// Reader serves lookups and scans from one table. The index and filter
// blocks are pinned in memory (they are what RocksDB keeps in its table
// cache); data blocks are read on demand, charging the simulated device
// one random read per block.
type Reader struct {
	f       vfs.File
	size    int64
	index   []byte
	filter  []byte
	entries int
	cache   *cache.Cache // optional shared block cache
	cacheID uint64
}

// Open reads the footer, index and filter of a table file.
func Open(f vfs.File) (*Reader, error) { return OpenWithCache(f, nil, 0) }

// OpenWithCache opens the table with a shared block cache; cacheID must
// be unique per file within the cache's lifetime (the engine uses the
// file number).
func OpenWithCache(f vfs.File, c *cache.Cache, cacheID uint64) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerLen {
		return nil, ErrCorrupt
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-footerLen); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[40:]) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	filterOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	filterLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	indexOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[24:]))
	entries := int(binary.LittleEndian.Uint64(footer[32:]))
	if filterOff+filterLen > size || indexOff+indexLen > size {
		return nil, fmt.Errorf("%w: bad block handles", ErrCorrupt)
	}
	r := &Reader{f: f, size: size, entries: entries, cache: c, cacheID: cacheID}
	r.filter = make([]byte, filterLen)
	if _, err := f.ReadAt(r.filter, filterOff); err != nil {
		return nil, err
	}
	r.index = make([]byte, indexLen)
	if _, err := f.ReadAt(r.index, indexOff); err != nil {
		return nil, err
	}
	return r, nil
}

// Entries reports the number of entries in the table.
func (r *Reader) Entries() int { return r.entries }

// Size reports the table file size.
func (r *Reader) Size() int64 { return r.size }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// MayContain consults the bloom filter for a user key.
func (r *Reader) MayContain(ukey []byte) bool {
	return bloom.MayContain(r.filter, ukey)
}

func (r *Reader) readBlock(handle []byte) ([]byte, error) {
	off, n1 := binary.Uvarint(handle)
	length, n2 := binary.Uvarint(handle[n1:])
	if n1 <= 0 || n2 <= 0 || int64(off)+int64(length) > r.size {
		return nil, ErrCorrupt
	}
	// Optional third field: raw (uncompressed) length; 0 or absent means
	// the block is stored uncompressed.
	rawLen := uint64(0)
	if rest := handle[n1+n2:]; len(rest) > 0 {
		v, n3 := binary.Uvarint(rest)
		if n3 <= 0 {
			return nil, ErrCorrupt
		}
		rawLen = v
	}
	if blk, ok := r.cache.Get(r.cacheID, off); ok {
		return blk, nil
	}
	blk := make([]byte, length)
	if _, err := r.f.ReadAt(blk, int64(off)); err != nil {
		return nil, err
	}
	if rawLen > 0 {
		raw := make([]byte, 0, rawLen)
		zr := flate.NewReader(bytes.NewReader(blk))
		buf := bytes.NewBuffer(raw)
		if _, err := io.Copy(buf, zr); err != nil {
			return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
		}
		zr.Close()
		blk = buf.Bytes()
		if uint64(len(blk)) != rawLen {
			return nil, fmt.Errorf("%w: inflated %d bytes, want %d", ErrCorrupt, len(blk), rawLen)
		}
	}
	r.cache.Put(r.cacheID, off, blk)
	return blk, nil
}

// Get returns the newest version of ukey visible at snapshot seq,
// reporting the version's sequence number, whether a version was found,
// and whether that version is a tombstone. Callers comparing versions
// across overlapping tables (L0, fragmented levels) use foundSeq to pick
// the newest.
func (r *Reader) Get(ukey []byte, seq uint64) (value []byte, foundSeq uint64, found, deleted bool, err error) {
	if !r.MayContain(ukey) {
		return nil, 0, false, false, nil
	}
	it := r.NewIterator()
	it.Seek(ikey.SeekKey(ukey, seq))
	if it.err != nil {
		return nil, 0, false, false, it.err
	}
	if !it.Valid() {
		return nil, 0, false, false, nil
	}
	gotUkey, gotSeq, kind, err := ikey.Decode(it.Key())
	if err != nil {
		return nil, 0, false, false, err
	}
	if !bytes.Equal(gotUkey, ukey) {
		return nil, 0, false, false, nil
	}
	if kind == ikey.KindDelete {
		return nil, gotSeq, true, true, nil
	}
	return append([]byte(nil), it.Value()...), gotSeq, true, false, nil
}

// Iter is a two-level iterator over the table's internal keys.
type Iter struct {
	r     *Reader
	index *block.Iter
	data  *block.Iter
	err   error
}

// NewIterator returns an iterator over the table.
func (r *Reader) NewIterator() *Iter {
	idx, err := block.NewIter(r.index)
	it := &Iter{r: r, index: idx, err: err}
	return it
}

func (it *Iter) loadDataBlock() bool {
	if it.err != nil || !it.index.Valid() {
		it.data = nil
		return false
	}
	blk, err := it.r.readBlock(it.index.Value())
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	di, err := block.NewIter(blk)
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	it.data = di
	return true
}

// SeekToFirst implements iteration start.
func (it *Iter) SeekToFirst() {
	if it.err != nil {
		return
	}
	it.index.SeekToFirst()
	if it.loadDataBlock() {
		it.data.SeekToFirst()
	}
}

// Seek positions at the first internal key >= target.
func (it *Iter) Seek(target []byte) {
	if it.err != nil {
		return
	}
	// Index keys are the last internal key of each block, so the first
	// index entry >= target names the block that may contain it.
	it.index.SeekWith(ikey.Compare, target)
	if !it.loadDataBlock() {
		return
	}
	it.data.SeekWith(ikey.Compare, target)
	it.skipForwardIfExhausted()
}

// Next advances the iterator.
func (it *Iter) Next() {
	if it.data == nil {
		return
	}
	it.data.Next()
	it.skipForwardIfExhausted()
}

func (it *Iter) skipForwardIfExhausted() {
	for it.data != nil && !it.data.Valid() {
		if it.data.Err() != nil {
			it.err = it.data.Err()
			it.data = nil
			return
		}
		it.index.Next()
		if !it.loadDataBlock() {
			return
		}
		it.data.SeekToFirst()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.err == nil && it.data != nil && it.data.Valid() }

// Key returns the current internal key.
func (it *Iter) Key() []byte { return it.data.Key() }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.data.Value() }

// Err returns the first error encountered.
func (it *Iter) Err() error { return it.err }
