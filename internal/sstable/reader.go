package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"p2kvs/internal/block"
	"p2kvs/internal/bloom"
	"p2kvs/internal/cache"
	"p2kvs/internal/ikey"
	"p2kvs/internal/kv"
	"p2kvs/internal/vfs"
)

// ErrCorrupt reports a malformed table.
var ErrCorrupt = errors.New("sstable: corrupt")

// corruptf builds a corruption error for one failed check. When the reader
// has a name, the error is a kv.CorruptionError (matching both
// kv.ErrCorruption and, via the %w chain below, nothing else); anonymous
// readers fall back to the package sentinel so old call sites keep
// matching ErrCorrupt.
func corruptf(name string, off int64, format string, args ...any) error {
	detail := fmt.Sprintf(format, args...)
	if name != "" {
		return &kv.CorruptionError{File: name, Offset: off, Detail: "sstable: " + detail}
	}
	return fmt.Errorf("%w: %s", ErrCorrupt, detail)
}

// Reader serves lookups and scans from one table. The index and filter
// blocks are pinned in memory (they are what RocksDB keeps in its table
// cache); data blocks are read on demand, charging the simulated device
// one random read per block. V2 tables verify every block's CRC-32C on
// load; v1 (legacy, pre-checksum) tables are served unverified.
type Reader struct {
	f       vfs.File
	name    string // for corruption reports; may be empty
	size    int64
	index   []byte
	filter  []byte
	entries int
	sealed  bool         // format v2: blocks carry CRC trailers
	cache   *cache.Cache // optional shared block cache
	cacheID uint64
}

// Open reads the footer, index and filter of a table file.
func Open(f vfs.File) (*Reader, error) { return OpenNamed(f, nil, 0, "") }

// OpenWithCache opens the table with a shared block cache; cacheID must
// be unique per file within the cache's lifetime (the engine uses the
// file number).
func OpenWithCache(f vfs.File, c *cache.Cache, cacheID uint64) (*Reader, error) {
	return OpenNamed(f, c, cacheID, "")
}

// OpenNamed opens the table recording name as the file's identity in
// corruption reports: checksum failures surface as kv.CorruptionError
// naming it. An empty name keeps the anonymous ErrCorrupt errors.
func OpenNamed(f vfs.File, c *cache.Cache, cacheID uint64, name string) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerLen {
		return nil, corruptf(name, -1, "file too small for a footer (%d bytes)", size)
	}
	var magicBuf [8]byte
	if _, err := f.ReadAt(magicBuf[:], size-8); err != nil {
		return nil, err
	}
	r := &Reader{f: f, name: name, size: size, cache: c, cacheID: cacheID}
	var footer [footerLenV2]byte
	switch binary.LittleEndian.Uint64(magicBuf[:]) {
	case tableMagicV2:
		if size < footerLenV2 {
			return nil, corruptf(name, -1, "file too small for a v2 footer (%d bytes)", size)
		}
		if _, err := f.ReadAt(footer[:], size-footerLenV2); err != nil {
			return nil, err
		}
		if got, want := block.Checksum(footer[:40]), binary.LittleEndian.Uint32(footer[40:]); got != want {
			return nil, corruptf(name, size-footerLenV2, "footer crc mismatch (stored %08x, content %08x)", want, got)
		}
		r.sealed = true
	case tableMagic:
		if _, err := f.ReadAt(footer[:footerLen], size-footerLen); err != nil {
			return nil, err
		}
	default:
		return nil, corruptf(name, size-8, "bad magic")
	}
	filterOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	filterLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	indexOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[24:]))
	r.entries = int(binary.LittleEndian.Uint64(footer[32:]))
	if filterOff < 0 || filterLen < 0 || indexOff < 0 || indexLen < 0 ||
		filterOff+filterLen > size || indexOff+indexLen > size {
		return nil, corruptf(name, -1, "bad block handles")
	}
	r.filter = make([]byte, filterLen)
	if _, err := f.ReadAt(r.filter, filterOff); err != nil {
		return nil, err
	}
	r.index = make([]byte, indexLen)
	if _, err := f.ReadAt(r.index, indexOff); err != nil {
		return nil, err
	}
	if r.sealed {
		if r.filter, err = block.Unseal(r.filter); err != nil {
			return nil, corruptf(name, filterOff, "filter block crc mismatch")
		}
		if r.index, err = block.Unseal(r.index); err != nil {
			return nil, corruptf(name, indexOff, "index block crc mismatch")
		}
	}
	return r, nil
}

// Entries reports the number of entries in the table.
func (r *Reader) Entries() int { return r.entries }

// Size reports the table file size.
func (r *Reader) Size() int64 { return r.size }

// Name reports the identity OpenNamed recorded, "" for anonymous readers.
func (r *Reader) Name() string { return r.name }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// MayContain consults the bloom filter for a user key.
func (r *Reader) MayContain(ukey []byte) bool {
	return bloom.MayContain(r.filter, ukey)
}

func (r *Reader) readBlock(handle []byte) ([]byte, error) {
	off, n1 := binary.Uvarint(handle)
	length, n2 := binary.Uvarint(handle[n1:])
	if n1 <= 0 || n2 <= 0 || int64(off)+int64(length) > r.size {
		return nil, corruptf(r.name, -1, "bad block handle")
	}
	// Optional third field: raw (uncompressed) length; 0 or absent means
	// the block is stored uncompressed.
	rawLen := uint64(0)
	if rest := handle[n1+n2:]; len(rest) > 0 {
		v, n3 := binary.Uvarint(rest)
		if n3 <= 0 {
			return nil, corruptf(r.name, -1, "bad block handle")
		}
		rawLen = v
	}
	if blk, ok := r.cache.Get(r.cacheID, off); ok {
		return blk, nil
	}
	blk := make([]byte, length)
	if _, err := r.f.ReadAt(blk, int64(off)); err != nil {
		return nil, err
	}
	if r.sealed {
		var err error
		if blk, err = block.Unseal(blk); err != nil {
			return nil, corruptf(r.name, int64(off), "data block crc mismatch (%d bytes)", length)
		}
	}
	if rawLen > 0 {
		raw := make([]byte, 0, rawLen)
		zr := flate.NewReader(bytes.NewReader(blk))
		buf := bytes.NewBuffer(raw)
		if _, err := io.Copy(buf, zr); err != nil {
			return nil, corruptf(r.name, int64(off), "inflate: %v", err)
		}
		zr.Close()
		blk = buf.Bytes()
		if uint64(len(blk)) != rawLen {
			return nil, corruptf(r.name, int64(off), "inflated %d bytes, want %d", len(blk), rawLen)
		}
	}
	r.cache.Put(r.cacheID, off, blk)
	return blk, nil
}

// Verify reads every block of the table back through its checksums: the
// footer (verified at Open), the pinned filter and index, and each data
// block named by the index — bypassing the block cache, so the bytes come
// from the device. It returns the number of bytes read and the first
// corruption found. V1 tables verify structurally only (handles parse,
// compressed blocks inflate): they carry no checksums to check.
func (r *Reader) Verify() (int64, error) {
	idx, err := block.NewIter(r.index)
	if err != nil {
		return 0, corruptf(r.name, -1, "index block: %v", err)
	}
	read := int64(len(r.filter) + len(r.index))
	for idx.SeekToFirst(); idx.Valid(); idx.Next() {
		handle := idx.Value()
		off, n1 := binary.Uvarint(handle)
		length, n2 := binary.Uvarint(handle[n1:])
		if n1 <= 0 || n2 <= 0 || int64(off)+int64(length) > r.size {
			return read, corruptf(r.name, -1, "bad block handle")
		}
		rawLen := uint64(0)
		if rest := handle[n1+n2:]; len(rest) > 0 {
			v, n3 := binary.Uvarint(rest)
			if n3 <= 0 {
				return read, corruptf(r.name, -1, "bad block handle")
			}
			rawLen = v
		}
		blk := make([]byte, length)
		if _, err := r.f.ReadAt(blk, int64(off)); err != nil {
			return read, err
		}
		read += int64(length)
		if r.sealed {
			if blk, err = block.Unseal(blk); err != nil {
				return read, corruptf(r.name, int64(off), "data block crc mismatch (%d bytes)", length)
			}
		}
		if rawLen > 0 {
			zr := flate.NewReader(bytes.NewReader(blk))
			n, err := io.Copy(io.Discard, zr)
			zr.Close()
			if err != nil {
				return read, corruptf(r.name, int64(off), "inflate: %v", err)
			}
			if uint64(n) != rawLen {
				return read, corruptf(r.name, int64(off), "inflated %d bytes, want %d", n, rawLen)
			}
		}
	}
	if idx.Err() != nil {
		return read, corruptf(r.name, -1, "index block: %v", idx.Err())
	}
	return read, nil
}

// Get returns the newest version of ukey visible at snapshot seq,
// reporting the version's sequence number, whether a version was found,
// and whether that version is a tombstone. Callers comparing versions
// across overlapping tables (L0, fragmented levels) use foundSeq to pick
// the newest.
func (r *Reader) Get(ukey []byte, seq uint64) (value []byte, foundSeq uint64, found, deleted bool, err error) {
	if !r.MayContain(ukey) {
		return nil, 0, false, false, nil
	}
	it := r.NewIterator()
	it.Seek(ikey.SeekKey(ukey, seq))
	if it.err != nil {
		return nil, 0, false, false, it.err
	}
	if !it.Valid() {
		return nil, 0, false, false, nil
	}
	gotUkey, gotSeq, kind, err := ikey.Decode(it.Key())
	if err != nil {
		return nil, 0, false, false, err
	}
	if !bytes.Equal(gotUkey, ukey) {
		return nil, 0, false, false, nil
	}
	if kind == ikey.KindDelete {
		return nil, gotSeq, true, true, nil
	}
	return append([]byte(nil), it.Value()...), gotSeq, true, false, nil
}

// Iter is a two-level iterator over the table's internal keys.
type Iter struct {
	r     *Reader
	index *block.Iter
	data  *block.Iter
	err   error
}

// NewIterator returns an iterator over the table.
func (r *Reader) NewIterator() *Iter {
	idx, err := block.NewIter(r.index)
	it := &Iter{r: r, index: idx, err: err}
	return it
}

func (it *Iter) loadDataBlock() bool {
	if it.err != nil || !it.index.Valid() {
		it.data = nil
		return false
	}
	blk, err := it.r.readBlock(it.index.Value())
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	di, err := block.NewIter(blk)
	if err != nil {
		it.err = err
		it.data = nil
		return false
	}
	it.data = di
	return true
}

// SeekToFirst implements iteration start.
func (it *Iter) SeekToFirst() {
	if it.err != nil {
		return
	}
	it.index.SeekToFirst()
	if it.loadDataBlock() {
		it.data.SeekToFirst()
	}
}

// Seek positions at the first internal key >= target.
func (it *Iter) Seek(target []byte) {
	if it.err != nil {
		return
	}
	// Index keys are the last internal key of each block, so the first
	// index entry >= target names the block that may contain it.
	it.index.SeekWith(ikey.Compare, target)
	if !it.loadDataBlock() {
		return
	}
	it.data.SeekWith(ikey.Compare, target)
	it.skipForwardIfExhausted()
}

// Next advances the iterator.
func (it *Iter) Next() {
	if it.data == nil {
		return
	}
	it.data.Next()
	it.skipForwardIfExhausted()
}

func (it *Iter) skipForwardIfExhausted() {
	for it.data != nil && !it.data.Valid() {
		if it.data.Err() != nil {
			it.err = it.data.Err()
			it.data = nil
			return
		}
		it.index.Next()
		if !it.loadDataBlock() {
			return
		}
		it.data.SeekToFirst()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.err == nil && it.data != nil && it.data.Valid() }

// Key returns the current internal key.
func (it *Iter) Key() []byte { return it.data.Key() }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.data.Value() }

// Err returns the first error encountered.
func (it *Iter) Err() error { return it.err }
