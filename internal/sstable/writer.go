// Package sstable implements the Sorted String Tables that populate the
// on-disk LSM-tree levels (Figure 2). A table is a sequence of
// prefix-compressed data blocks followed by a bloom-filter block, an index
// block (one separator entry per data block) and a fixed footer.
//
// Format v2 (what the writer emits) seals every stored block — data,
// filter and index — with a CRC-32C trailer over its stored
// (post-compression) bytes, and checksums the footer itself:
//
//	[sealed data block]*  [sealed filter]  [sealed index]  [footer (56B)]
//
// Footer v2: filterOff u64 | filterLen u64 | indexOff u64 | indexLen u64 |
// entries u64 | crc32c u32 (over the first 40 bytes) | pad u32 | magic u64.
//
// Format v1 (no checksums, 48-byte footer: the same five u64 fields then
// the v1 magic) is still readable: both formats end in their 8-byte magic,
// so Open sniffs the tail to pick the parse. Readers of v2 tables verify
// every block on load and surface mismatches as kv.CorruptionError —
// a flipped bit at rest is detected, never served.
package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"

	"p2kvs/internal/block"
	"p2kvs/internal/bloom"
	"p2kvs/internal/ikey"
	"p2kvs/internal/vfs"
)

const (
	targetBlockSize = 4 << 10
	footerLen       = 48 // format v1 (legacy, unchecksummed)
	footerLenV2     = 56
	tableMagic      = 0x70324b5653535400 // "p2KVSSST\0"-ish, format v1
	tableMagicV2    = 0x70324b5653535432 // trailing '2', format v2
)

// Meta summarizes a finished table for the version set.
type Meta struct {
	FileNum  uint64
	Size     int64
	Smallest []byte // internal keys
	Largest  []byte
	Entries  int
}

// Writer streams a table to a file. Add must be called in strictly
// ascending internal-key order.
type Writer struct {
	f        vfs.File
	off      int64
	data     block.Builder
	index    block.Builder
	filter   *bloom.Filter
	ukeys    [][]byte
	meta     Meta
	lastKey  []byte
	err      error
	compress bool
}

// NewWriter begins a table in f.
func NewWriter(f vfs.File, fileNum uint64) *Writer {
	return &Writer{f: f, filter: bloom.New(10), meta: Meta{FileNum: fileNum}}
}

// EnableCompression turns on per-block DEFLATE compression. Blocks are
// stored compressed only when that actually shrinks them, so the choice
// is safe for incompressible values.
func (w *Writer) EnableCompression() { w.compress = true }

// Add appends an internal-key/value entry.
func (w *Writer) Add(ik, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.lastKey != nil && ikey.Compare(ik, w.lastKey) <= 0 {
		w.err = fmt.Errorf("sstable: keys out of order (%q after %q)", ik, w.lastKey)
		return w.err
	}
	if w.meta.Smallest == nil {
		w.meta.Smallest = append([]byte(nil), ik...)
	}
	w.lastKey = append(w.lastKey[:0], ik...)
	w.ukeys = append(w.ukeys, append([]byte(nil), ikey.UserKey(ik)...))
	w.data.Add(ik, value)
	w.meta.Entries++
	if w.data.EstimatedSize() >= targetBlockSize {
		w.flushDataBlock()
	}
	return w.err
}

func (w *Writer) flushDataBlock() {
	if w.data.Empty() {
		return
	}
	blk := w.data.Finish()
	rawLen := 0 // 0 in the handle marks an uncompressed block
	if w.compress {
		if comp, ok := deflateBlock(blk); ok {
			rawLen = len(blk)
			blk = comp
		}
	}
	// The checksum seals the stored bytes (after compression), so the
	// reader verifies integrity before spending CPU on inflation.
	blk = block.Seal(blk)
	off := w.off
	if err := w.writeRaw(blk); err != nil {
		return
	}
	// Index entry: last key of the block -> (offset, storedSize, rawSize).
	// storedSize includes the checksum trailer.
	var handle [3 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(handle[:], uint64(off))
	n += binary.PutUvarint(handle[n:], uint64(len(blk)))
	n += binary.PutUvarint(handle[n:], uint64(rawLen))
	w.index.Add(w.lastKey, handle[:n])
	w.data.Reset()
}

// deflateBlock compresses blk, reporting false when compression does not
// pay (output not smaller).
func deflateBlock(blk []byte) ([]byte, bool) {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, false
	}
	if _, err := zw.Write(blk); err != nil {
		return nil, false
	}
	if err := zw.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(blk) {
		return nil, false
	}
	return buf.Bytes(), true
}

func (w *Writer) writeRaw(p []byte) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.f.Write(p); err != nil {
		w.err = err
		return err
	}
	w.off += int64(len(p))
	return nil
}

// Finish flushes remaining blocks, writes filter/index/footer and syncs.
// It returns the table's metadata.
func (w *Writer) Finish() (Meta, error) {
	if w.err != nil {
		return Meta{}, w.err
	}
	if w.meta.Entries == 0 {
		w.err = errors.New("sstable: empty table")
		return Meta{}, w.err
	}
	w.flushDataBlock()
	w.meta.Largest = append([]byte(nil), w.lastKey...)

	filterOff := w.off
	filterBlk := block.Seal(w.filter.Build(w.ukeys))
	if err := w.writeRaw(filterBlk); err != nil {
		return Meta{}, err
	}

	indexOff := w.off
	indexBlk := block.Seal(w.index.Finish())
	if err := w.writeRaw(indexBlk); err != nil {
		return Meta{}, err
	}

	var footer [footerLenV2]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(filterOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(filterBlk)))
	binary.LittleEndian.PutUint64(footer[16:], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(indexBlk)))
	binary.LittleEndian.PutUint64(footer[32:], uint64(w.meta.Entries))
	binary.LittleEndian.PutUint32(footer[40:], block.Checksum(footer[:40]))
	binary.LittleEndian.PutUint64(footer[48:], tableMagicV2)
	if err := w.writeRaw(footer[:]); err != nil {
		return Meta{}, err
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return Meta{}, err
	}
	w.meta.Size = w.off
	return w.meta, nil
}

// Abandon marks the writer failed (caller removes the partial file).
func (w *Writer) Abandon() { w.err = errors.New("sstable: abandoned") }
