package sstable

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"p2kvs/internal/cache"
	"p2kvs/internal/ikey"
	"p2kvs/internal/vfs"
)

// buildTable writes user keys (with seq = their index+1) into a table and
// reopens it.
func buildTable(t *testing.T, pairs [][2]string) (*Reader, Meta) {
	t.Helper()
	fs := vfs.NewMem()
	f, err := fs.Create("1.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 1)
	for i, p := range pairs {
		ik := ikey.Make([]byte(p[0]), uint64(i+1), ikey.KindSet)
		if err := w.Add(ik, []byte(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := fs.Open("1.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	return r, meta
}

func sortedPairs(n int) [][2]string {
	pairs := make([][2]string, n)
	for i := 0; i < n; i++ {
		pairs[i] = [2]string{fmt.Sprintf("key%06d", i), fmt.Sprintf("value-%d", i)}
	}
	return pairs
}

func TestWriteReadSmall(t *testing.T) {
	pairs := sortedPairs(10)
	r, meta := buildTable(t, pairs)
	defer r.Close()
	if meta.Entries != 10 || r.Entries() != 10 {
		t.Fatalf("entries = %d/%d", meta.Entries, r.Entries())
	}
	if string(ikey.UserKey(meta.Smallest)) != "key000000" {
		t.Fatalf("smallest = %q", meta.Smallest)
	}
	if string(ikey.UserKey(meta.Largest)) != "key000009" {
		t.Fatalf("largest = %q", meta.Largest)
	}
	for i, p := range pairs {
		v, _, found, deleted, err := r.Get([]byte(p[0]), ikey.MaxSeq)
		if err != nil || !found || deleted {
			t.Fatalf("Get(%q) = found=%v deleted=%v err=%v", p[0], found, deleted, err)
		}
		if string(v) != pairs[i][1] {
			t.Fatalf("Get(%q) = %q", p[0], v)
		}
	}
	if _, _, found, _, _ := r.Get([]byte("missing"), ikey.MaxSeq); found {
		t.Fatal("found a missing key")
	}
}

func TestMultiBlockTable(t *testing.T) {
	// Enough data to force many 4KB blocks.
	pairs := sortedPairs(5000)
	r, _ := buildTable(t, pairs)
	defer r.Close()

	// Full iteration in order.
	it := r.NewIterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		uk := ikey.UserKey(it.Key())
		if string(uk) != pairs[i][0] {
			t.Fatalf("entry %d key %q, want %q", i, uk, pairs[i][0])
		}
		if string(it.Value()) != pairs[i][1] {
			t.Fatalf("entry %d value mismatch", i)
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != len(pairs) {
		t.Fatalf("iterated %d, want %d", i, len(pairs))
	}

	// Point gets across block boundaries.
	for _, idx := range []int{0, 1, 999, 1000, 2500, 4998, 4999} {
		v, _, found, _, err := r.Get([]byte(pairs[idx][0]), ikey.MaxSeq)
		if err != nil || !found || string(v) != pairs[idx][1] {
			t.Fatalf("Get(%d) = %q %v %v", idx, v, found, err)
		}
	}

	// Seek lands mid-table.
	it2 := r.NewIterator()
	it2.Seek(ikey.SeekKey([]byte("key002500"), ikey.MaxSeq))
	if !it2.Valid() || string(ikey.UserKey(it2.Key())) != "key002500" {
		t.Fatalf("Seek landed on %q", it2.Key())
	}
}

func TestVersionsAndTombstones(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, 7)
	// key "a": set@5 then (older) set@3; key "b": delete@9 then set@2.
	w.Add(ikey.Make([]byte("a"), 5, ikey.KindSet), []byte("new"))
	w.Add(ikey.Make([]byte("a"), 3, ikey.KindSet), []byte("old"))
	w.Add(ikey.Make([]byte("b"), 9, ikey.KindDelete), nil)
	w.Add(ikey.Make([]byte("b"), 2, ikey.KindSet), []byte("gone"))
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	rf, _ := fs.Open("t.sst")
	r, err := Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	v, fseq, found, deleted, _ := r.Get([]byte("a"), ikey.MaxSeq)
	if fseq != 5 {
		t.Fatalf("foundSeq = %d, want 5", fseq)
	}
	if !found || deleted || string(v) != "new" {
		t.Fatalf("Get(a, max) = %q %v %v", v, found, deleted)
	}
	// Snapshot before the newer version sees the old one.
	v, _, found, deleted, _ = r.Get([]byte("a"), 4)
	if !found || deleted || string(v) != "old" {
		t.Fatalf("Get(a, 4) = %q %v %v", v, found, deleted)
	}
	// b is deleted at max seq…
	_, _, found, deleted, _ = r.Get([]byte("b"), ikey.MaxSeq)
	if !found || !deleted {
		t.Fatalf("Get(b, max) = found=%v deleted=%v", found, deleted)
	}
	// …but visible at an old snapshot.
	v, _, found, deleted, _ = r.Get([]byte("b"), 2)
	if !found || deleted || string(v) != "gone" {
		t.Fatalf("Get(b, 2) = %q %v %v", v, found, deleted)
	}
}

func TestOutOfOrderAddFails(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, 1)
	if err := w.Add(ikey.Make([]byte("b"), 1, ikey.KindSet), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(ikey.Make([]byte("a"), 2, ikey.KindSet), nil); err == nil {
		t.Fatal("out-of-order add must fail")
	}
}

func TestEmptyTableFails(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, 1)
	if _, err := w.Finish(); err == nil {
		t.Fatal("finishing an empty table must fail")
	}
}

func TestOpenCorrupt(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("bad.sst")
	f.Write(bytes.Repeat([]byte{0xab}, 100))
	f.Close()
	rf, _ := fs.Open("bad.sst")
	if _, err := Open(rf); err == nil {
		t.Fatal("opening garbage must fail")
	}
	// Too-short file.
	f2, _ := fs.Create("short.sst")
	f2.Write([]byte("x"))
	rf2, _ := fs.Open("short.sst")
	if _, err := Open(rf2); err == nil {
		t.Fatal("opening short file must fail")
	}
}

func TestQuickTableModel(t *testing.T) {
	// Property: a table built from any sorted unique key set serves every
	// key and reports absent probes absent (modulo bloom false positives,
	// which Get resolves via the index, so correctness is exact).
	fn := func(raw map[string]string, probe string) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fs := vfs.NewMem()
		f, _ := fs.Create("q.sst")
		w := NewWriter(f, 1)
		for i, k := range keys {
			if w.Add(ikey.Make([]byte(k), uint64(i+1), ikey.KindSet), []byte(raw[k])) != nil {
				return false
			}
		}
		if _, err := w.Finish(); err != nil {
			return false
		}
		rf, _ := fs.Open("q.sst")
		r, err := Open(rf)
		if err != nil {
			return false
		}
		defer r.Close()
		for _, k := range keys {
			v, _, found, deleted, err := r.Get([]byte(k), ikey.MaxSeq)
			if err != nil || !found || deleted || string(v) != raw[k] {
				return false
			}
		}
		if _, ok := raw[probe]; !ok {
			_, _, found, _, err := r.Get([]byte(probe), ikey.MaxSeq)
			if err != nil || found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedTableRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("c.sst")
	w := NewWriter(f, 1)
	w.EnableCompression()
	// Highly compressible values: repeated text.
	const n = 3000
	for i := 0; i < n; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), ikey.KindSet)
		if err := w.Add(ik, bytes.Repeat([]byte("abcd"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Compression must materially shrink the file: raw payload is
	// n*(17+8+128) bytes; compressed should be far below it.
	raw := int64(n * (17 + 8 + 128))
	if meta.Size >= raw/2 {
		t.Fatalf("compressed size %d vs raw %d — compression ineffective", meta.Size, raw)
	}
	rf, _ := fs.Open("c.sst")
	r, err := Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < n; i += 97 {
		v, _, found, _, err := r.Get([]byte(fmt.Sprintf("key%06d", i)), ikey.MaxSeq)
		if err != nil || !found || len(v) != 128 {
			t.Fatalf("Get(%d) = %dB %v %v", i, len(v), found, err)
		}
	}
	// Full scan decodes every block.
	it := r.NewIterator()
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		count++
	}
	if it.Err() != nil || count != n {
		t.Fatalf("scan = %d entries, err %v", count, it.Err())
	}
}

func TestIncompressibleBlocksStayRaw(t *testing.T) {
	// Random values: deflate can't shrink them, so blocks must be stored
	// raw (handle rawLen == 0) and round-trip fine.
	fs := vfs.NewMem()
	f, _ := fs.Create("r.sst")
	w := NewWriter(f, 1)
	w.EnableCompression()
	rnd := make([]byte, 128)
	for i := range rnd {
		rnd[i] = byte(i*37 + 11)
	}
	for i := 0; i < 500; i++ {
		for j := range rnd {
			rnd[j] ^= byte(i + j*13)
		}
		ik := ikey.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), ikey.KindSet)
		w.Add(ik, rnd)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	rf, _ := fs.Open("r.sst")
	r, err := Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, found, _, err := r.Get([]byte("key000250"), ikey.MaxSeq); err != nil || !found {
		t.Fatalf("Get = %v %v", found, err)
	}
}

func TestReaderWithBlockCache(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("b.sst")
	w := NewWriter(f, 1)
	for i := 0; i < 2000; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), ikey.KindSet)
		w.Add(ik, []byte(fmt.Sprintf("val%d", i)))
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	rf, _ := fs.Open("b.sst")
	c := cache.New(1 << 20)
	r, err := OpenWithCache(rf, c, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Same block twice: second read must be a cache hit.
	r.Get([]byte("key000100"), ikey.MaxSeq)
	r.Get([]byte("key000101"), ikey.MaxSeq)
	hits, _, _ := c.Stats()
	if hits == 0 {
		t.Fatal("block cache never hit")
	}
	if v, _, found, _, _ := r.Get([]byte("key000100"), ikey.MaxSeq); !found || string(v) != "val100" {
		t.Fatalf("cached read wrong: %q %v", v, found)
	}
}
