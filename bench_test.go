// bench_test.go exposes every paper experiment as a testing.B benchmark
// (one per table/figure, mirroring DESIGN.md's per-experiment index) plus
// engine-level micro-benchmarks. The figure benchmarks run the registered
// experiment in Quick mode once per iteration and report the rows to the
// benchmark log; use cmd/p2kvs-bench for full-budget runs.
package p2kvs

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"p2kvs/internal/bench"
	"p2kvs/internal/kv"
	"p2kvs/internal/lsm"
	"p2kvs/internal/memtable"
	"p2kvs/internal/skiplist"
	"p2kvs/internal/vfs"
	"p2kvs/internal/wal"
	"p2kvs/internal/workload"

	"bytes"

	"p2kvs/internal/ikey"
)

// experimentBench runs one registered experiment per iteration.
func experimentBench(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Run(name, bench.Env{Quick: true, Out: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb bytes.Buffer
			tbl.Print(&sb)
			b.Log(sb.String())
		}
	}
}

func BenchmarkFig1(b *testing.B)              { experimentBench(b, "fig1") }
func BenchmarkFig4(b *testing.B)              { experimentBench(b, "fig4") }
func BenchmarkFig5(b *testing.B)              { experimentBench(b, "fig5") }
func BenchmarkFig6(b *testing.B)              { experimentBench(b, "fig6") }
func BenchmarkFig7(b *testing.B)              { experimentBench(b, "fig7") }
func BenchmarkFig8(b *testing.B)              { experimentBench(b, "fig8") }
func BenchmarkFig12(b *testing.B)             { experimentBench(b, "fig12") }
func BenchmarkTable2(b *testing.B)            { experimentBench(b, "table2") }
func BenchmarkFig13(b *testing.B)             { experimentBench(b, "fig13") }
func BenchmarkFig14(b *testing.B)             { experimentBench(b, "fig14") }
func BenchmarkFig15(b *testing.B)             { experimentBench(b, "fig15") }
func BenchmarkFig16(b *testing.B)             { experimentBench(b, "fig16") }
func BenchmarkFig17(b *testing.B)             { experimentBench(b, "fig17") }
func BenchmarkFig18(b *testing.B)             { experimentBench(b, "fig18") }
func BenchmarkFig20(b *testing.B)             { experimentBench(b, "fig20") }
func BenchmarkFig21(b *testing.B)             { experimentBench(b, "fig21") }
func BenchmarkFig22(b *testing.B)             { experimentBench(b, "fig22") }
func BenchmarkFig23(b *testing.B)             { experimentBench(b, "fig23") }
func BenchmarkAblationBatch(b *testing.B)     { experimentBench(b, "ablation-batch") }
func BenchmarkAblationPartition(b *testing.B) { experimentBench(b, "ablation-partition") }
func BenchmarkAblationScan(b *testing.B)      { experimentBench(b, "ablation-scan") }

// ---------------------------------------------------------------------------
// Engine micro-benchmarks (per-op costs, no simulated device)
// ---------------------------------------------------------------------------

func BenchmarkSkiplistInsertConcurrent(b *testing.B) {
	l := skiplist.NewConcurrent(bytes.Compare, nil)
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%012d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(keys[i])
	}
}

func BenchmarkSkiplistInsertBasic(b *testing.B) {
	l := skiplist.NewBasic(bytes.Compare, nil)
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%012d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(keys[i])
	}
}

func BenchmarkMemtableAddGet(b *testing.B) {
	m := memtable.New(true)
	val := workload.Value(1, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := workload.Key(uint64(i % 100000))
		m.Add(uint64(i+1), ikey.KindSet, k, val)
		if i%4 == 0 {
			m.Get(k, ikey.MaxSeq)
		}
	}
}

func BenchmarkWALAppendSolo(b *testing.B) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := wal.NewWriter(f, wal.Options{})
	payload := make([]byte, 144)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(0, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
}

func BenchmarkLSMPut128(b *testing.B) {
	fs := vfs.NewMem()
	db, err := lsm.Open("db", lsm.RocksDBOptions(fs))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := workload.Value(1, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(workload.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(16 + len(val)))
}

func BenchmarkLSMGet(b *testing.B) {
	fs := vfs.NewMem()
	db, err := lsm.Open("db", lsm.RocksDBOptions(fs))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 100000
	val := workload.Value(1, 128)
	for i := 0; i < n; i++ {
		db.Put(workload.Key(uint64(i)), val)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(workload.Key(uint64(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkP2KVSPut(b *testing.B) {
	s, err := Open(Options{Dir: "bench-db", Workers: 4, InMemory: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := workload.Value(1, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(workload.Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(16 + len(val)))
}

func BenchmarkP2KVSPutAsync(b *testing.B) {
	s, err := Open(Options{Dir: "bench-db", Workers: 4, InMemory: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := workload.Value(1, 128)
	var pending sync.WaitGroup
	cb := func(error) { pending.Done() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pending.Add(1)
		if err := s.PutAsync(workload.Key(uint64(i)), val, cb); err != nil {
			b.Fatal(err)
		}
	}
	pending.Wait()
	b.SetBytes(int64(16 + len(val)))
}

func BenchmarkP2KVSGetParallel(b *testing.B) {
	s, err := Open(Options{Dir: "bench-db", Workers: 4, InMemory: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 50000
	val := workload.Value(1, 128)
	for i := 0; i < n; i++ {
		s.Put(workload.Key(uint64(i)), val)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.Get(workload.Key(uint64(i % n))); err != nil && err != kv.ErrNotFound {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkAblationCache(b *testing.B) { experimentBench(b, "ablation-cache") }
