// Command p2kvs-cli is a small interactive shell over a p2KVS store:
//
//	p2kvs-cli -dir /tmp/db -workers 8
//	> put greeting hello
//	> get greeting
//	hello
//	> scan a 10
//	> range a z
//	> stats
//	> quit
//
// With -cluster it instead talks to a multi-node serving tier through
// the consistent-hash cluster client. Nodes are comma-separated; a
// primary's read replicas follow it after slashes:
//
//	p2kvs-cli -cluster host1:6380/replica1:6390,host2:6380 -replica_reads
//	> put greeting hello
//	> mget greeting other
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"p2kvs"
	"p2kvs/internal/cluster"
)

func main() {
	var (
		dir          = flag.String("dir", "", "data directory (default: in-memory)")
		workers      = flag.Int("workers", 4, "worker count")
		engine       = flag.String("engine", "rocksdb", "engine kind")
		clusterSpec  = flag.String("cluster", "", "cluster mode: comma-separated nodes, each primary[/replica...] (host:port)")
		replicaReads = flag.Bool("replica_reads", false, "with -cluster, fan reads out across each node's replicas (eventually consistent)")
	)
	flag.Parse()

	if *clusterSpec != "" {
		runCluster(*clusterSpec, *replicaReads)
		return
	}

	store, err := p2kvs.Open(p2kvs.Options{
		Dir:      orDefault(*dir, "cli-db"),
		Workers:  *workers,
		Engine:   p2kvs.EngineKind(*engine),
		InMemory: *dir == "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2kvs-cli:", err)
		os.Exit(1)
	}
	defer store.Close()

	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("p2kvs shell — commands: put k v | get k | del k | scan start n | range lo hi | stats | quit")
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := execute(store, line); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

func execute(store *p2kvs.Store, line string) (quit bool) {
	fields := strings.Fields(line)
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	fail := func(format string, a ...interface{}) {
		fmt.Printf("error: "+format+"\n", a...)
	}
	switch cmd {
	case "put":
		if len(args) != 2 {
			fail("usage: put <key> <value>")
			return
		}
		if err := store.Put([]byte(args[0]), []byte(args[1])); err != nil {
			fail("%v", err)
		}
	case "get":
		if len(args) != 1 {
			fail("usage: get <key>")
			return
		}
		v, err := store.Get([]byte(args[0]))
		switch err {
		case nil:
			fmt.Println(string(v))
		case p2kvs.ErrNotFound:
			fmt.Println("(not found)")
		default:
			fail("%v", err)
		}
	case "del", "delete":
		if len(args) != 1 {
			fail("usage: del <key>")
			return
		}
		if err := store.Delete([]byte(args[0])); err != nil {
			fail("%v", err)
		}
	case "scan":
		if len(args) != 2 {
			fail("usage: scan <start> <count>")
			return
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			fail("bad count: %v", err)
			return
		}
		pairs, err := store.Scan([]byte(args[0]), n)
		if err != nil {
			fail("%v", err)
			return
		}
		for _, p := range pairs {
			fmt.Printf("%s = %s\n", p.Key, p.Value)
		}
	case "range":
		if len(args) != 2 {
			fail("usage: range <lo> <hi>")
			return
		}
		pairs, err := store.Range([]byte(args[0]), []byte(args[1]))
		if err != nil {
			fail("%v", err)
			return
		}
		for _, p := range pairs {
			fmt.Printf("%s = %s\n", p.Key, p.Value)
		}
	case "stats":
		for _, ws := range store.Stats() {
			fmt.Printf("worker %d: ops=%d batches=%d batched-ops=%d queue-wait=%v\n",
				ws.ID, ws.Ops, ws.Batches, ws.BatchedOps, ws.QueueWait)
		}
	case "quit", "exit":
		return true
	default:
		fail("unknown command %q", cmd)
	}
	return false
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// parseClusterSpec turns "p1:6380/r1:6390/r2:6391,p2:6380" into the
// cluster client's node list.
func parseClusterSpec(spec string) ([]cluster.Node, error) {
	var nodes []cluster.Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		hosts := strings.Split(part, "/")
		n := cluster.Node{Addr: hosts[0]}
		for _, r := range hosts[1:] {
			if r = strings.TrimSpace(r); r != "" {
				n.Replicas = append(n.Replicas, r)
			}
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no nodes in cluster spec %q", spec)
	}
	return nodes, nil
}

func runCluster(spec string, replicaReads bool) {
	nodes, err := parseClusterSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2kvs-cli:", err)
		os.Exit(1)
	}
	cl, err := cluster.New(nodes, cluster.Options{ReadFromReplicas: replicaReads})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2kvs-cli:", err)
		os.Exit(1)
	}
	defer cl.Close()

	sc := bufio.NewScanner(os.Stdin)
	fmt.Printf("p2kvs cluster shell (%d nodes) — commands: put k v | get k | del k | mget k... | mset k v [k v]... | nodes | quit\n", len(nodes))
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := executeCluster(cl, line); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

func executeCluster(cl *cluster.Client, line string) (quit bool) {
	fields := strings.Fields(line)
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	fail := func(format string, a ...interface{}) {
		fmt.Printf("error: "+format+"\n", a...)
	}
	switch cmd {
	case "put", "set":
		if len(args) != 2 {
			fail("usage: put <key> <value>")
			return
		}
		if err := cl.Set([]byte(args[0]), []byte(args[1])); err != nil {
			fail("%v", err)
		}
	case "get":
		if len(args) != 1 {
			fail("usage: get <key>")
			return
		}
		v, err := cl.Get([]byte(args[0]))
		switch {
		case err != nil:
			fail("%v", err)
		case v == nil:
			fmt.Println("(not found)")
		default:
			fmt.Println(string(v))
		}
	case "del", "delete":
		if len(args) != 1 {
			fail("usage: del <key>")
			return
		}
		if err := cl.Del([]byte(args[0])); err != nil {
			fail("%v", err)
		}
	case "mget":
		if len(args) == 0 {
			fail("usage: mget <key>...")
			return
		}
		keys := make([][]byte, len(args))
		for i, a := range args {
			keys[i] = []byte(a)
		}
		vals, err := cl.MGet(keys)
		if err != nil {
			fail("%v", err)
			return
		}
		for i, v := range vals {
			if v == nil {
				fmt.Printf("%s = (not found)\n", args[i])
			} else {
				fmt.Printf("%s = %s\n", args[i], v)
			}
		}
	case "mset":
		if len(args) == 0 || len(args)%2 != 0 {
			fail("usage: mset <key> <value> [<key> <value>]...")
			return
		}
		keys := make([][]byte, 0, len(args)/2)
		vals := make([][]byte, 0, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			keys = append(keys, []byte(args[i]))
			vals = append(vals, []byte(args[i+1]))
		}
		if err := cl.MSet(keys, vals); err != nil {
			fail("%v", err)
		}
	case "nodes":
		for i, n := range cl.Nodes() {
			if len(n.Replicas) > 0 {
				fmt.Printf("node %d: %s (replicas: %s)\n", i, n.Addr, strings.Join(n.Replicas, ", "))
			} else {
				fmt.Printf("node %d: %s\n", i, n.Addr)
			}
		}
	case "quit", "exit":
		return true
	default:
		fail("unknown command %q", cmd)
	}
	return false
}
