// Command p2kvs-cli is a small interactive shell over a p2KVS store:
//
//	p2kvs-cli -dir /tmp/db -workers 8
//	> put greeting hello
//	> get greeting
//	hello
//	> scan a 10
//	> range a z
//	> stats
//	> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"p2kvs"
)

func main() {
	var (
		dir     = flag.String("dir", "", "data directory (default: in-memory)")
		workers = flag.Int("workers", 4, "worker count")
		engine  = flag.String("engine", "rocksdb", "engine kind")
	)
	flag.Parse()

	store, err := p2kvs.Open(p2kvs.Options{
		Dir:      orDefault(*dir, "cli-db"),
		Workers:  *workers,
		Engine:   p2kvs.EngineKind(*engine),
		InMemory: *dir == "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2kvs-cli:", err)
		os.Exit(1)
	}
	defer store.Close()

	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("p2kvs shell — commands: put k v | get k | del k | scan start n | range lo hi | stats | quit")
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := execute(store, line); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

func execute(store *p2kvs.Store, line string) (quit bool) {
	fields := strings.Fields(line)
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	fail := func(format string, a ...interface{}) {
		fmt.Printf("error: "+format+"\n", a...)
	}
	switch cmd {
	case "put":
		if len(args) != 2 {
			fail("usage: put <key> <value>")
			return
		}
		if err := store.Put([]byte(args[0]), []byte(args[1])); err != nil {
			fail("%v", err)
		}
	case "get":
		if len(args) != 1 {
			fail("usage: get <key>")
			return
		}
		v, err := store.Get([]byte(args[0]))
		switch err {
		case nil:
			fmt.Println(string(v))
		case p2kvs.ErrNotFound:
			fmt.Println("(not found)")
		default:
			fail("%v", err)
		}
	case "del", "delete":
		if len(args) != 1 {
			fail("usage: del <key>")
			return
		}
		if err := store.Delete([]byte(args[0])); err != nil {
			fail("%v", err)
		}
	case "scan":
		if len(args) != 2 {
			fail("usage: scan <start> <count>")
			return
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			fail("bad count: %v", err)
			return
		}
		pairs, err := store.Scan([]byte(args[0]), n)
		if err != nil {
			fail("%v", err)
			return
		}
		for _, p := range pairs {
			fmt.Printf("%s = %s\n", p.Key, p.Value)
		}
	case "range":
		if len(args) != 2 {
			fail("usage: range <lo> <hi>")
			return
		}
		pairs, err := store.Range([]byte(args[0]), []byte(args[1]))
		if err != nil {
			fail("%v", err)
			return
		}
		for _, p := range pairs {
			fmt.Printf("%s = %s\n", p.Key, p.Value)
		}
	case "stats":
		for _, ws := range store.Stats() {
			fmt.Printf("worker %d: ops=%d batches=%d batched-ops=%d queue-wait=%v\n",
				ws.ID, ws.Ops, ws.Batches, ws.BatchedOps, ws.QueueWait)
		}
	case "quit", "exit":
		return true
	default:
		fail("unknown command %q", cmd)
	}
	return false
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
