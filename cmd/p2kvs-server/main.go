// Command p2kvs-server serves a p2KVS store over the Redis wire protocol
// (RESP2), so redis-cli and stock Redis clients can drive the accessing
// layer directly. Pipelined SET/GET runs are coalesced into the store's
// batch entry points; SIGTERM/SIGINT (or a client SHUTDOWN command)
// triggers a graceful drain: stop accepting, finish in-flight pipelines,
// flush every reply, then close the store.
//
// Example:
//
//	p2kvs-server -addr 127.0.0.1:6380 -dir /tmp/p2kvs -workers 8 \
//	             -debug_addr 127.0.0.1:6381 -cmd_timeout 2s
//	redis-cli -p 6380 set hello world
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"p2kvs"
	"p2kvs/internal/server"
	"p2kvs/internal/vfs"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:6380", "TCP listen address")
		debugAddr     = flag.String("debug_addr", "", "HTTP debug listen address (/metrics, /debug/pprof); empty disables")
		dir           = flag.String("dir", "p2kvs-server-db", "data directory")
		inMemory      = flag.Bool("inmemory", false, "use the in-memory filesystem (data lost on exit)")
		engine        = flag.String("engine", "rocksdb", "engine: rocksdb, leveldb, pebblesdb, wiredtiger, kvell")
		workers       = flag.Int("workers", 8, "worker count")
		admission     = flag.String("admission", "reject", "admission policy: block, reject, wait")
		queueDepth    = flag.Int("queue_depth", 0, "per-worker queue depth (0 = default 4096)")
		maxBatch      = flag.Int("max_batch", 0, "OBM batch cap (0 = default 32)")
		syncWAL       = flag.Bool("sync", false, "fsync per commit")
		walSync       = flag.String("wal_sync", "", "WAL durability policy: never, commit, or an interval like 100ms; empty defers to -sync")
		cmdTimeout    = flag.Duration("cmd_timeout", 0, "per-command deadline (0 = none)")
		maxConns      = flag.Int("max_conns", 1024, "max concurrent client connections")
		maxPipeline   = flag.Int("max_pipeline", 128, "max pipelined commands coalesced per read window")
		idleTimeout   = flag.Duration("conn_idle_timeout", 0, "close connections idle for this long (0 = never)")
		writeTimeout  = flag.Duration("conn_write_timeout", 0, "per-flush write deadline for slow clients (0 = none)")
		drainTimeout  = flag.Duration("drain_timeout", 30*time.Second, "graceful shutdown bound (connections and store drain)")
		maxBgComp     = flag.Int("max_bg_compactions", 0, "concurrent compactions per LSM instance (0 = default 2)")
		subComp       = flag.Int("subcompactions", 0, "parallel key-range splits per compaction (0 = default 1, off)")
		l0Slowdown    = flag.Int("l0_slowdown", 0, "L0 file count that soft-delays writers (0 = engine default)")
		ckptDir       = flag.String("checkpoint_dir", "", "backup set BGSAVE writes into; empty disables BGSAVE")
		scrubIvl      = flag.Duration("scrub_interval", 0, "background at-rest integrity scrub cadence (0 = disabled; SCRUB stays available)")
		scrubRate     = flag.Int64("scrub_rate", 0, "scrub read-bandwidth budget in bytes/sec (0 = unthrottled)")
		repairFrom    = flag.String("repair_from", "", "backup directory engines may pull verified files from to self-repair quarantined data; defaults to -checkpoint_dir")
		hotCache      = flag.Int64("hot_cache", 0, "hot-key read cache budget in bytes; hits bypass queue admission (-1 = default 32 MiB; 0 disables)")
		replicaOf     = flag.String("replicaof", "", "start as a read-only replica of a primary at host:port (also settable at runtime via REPLICAOF)")
		replBacklog   = flag.Int64("repl_backlog", 0, "replication backlog retention in bytes; any non-zero value enables replication (-1 = default 16 MiB; 0 disables unless -replicaof or -repl_dir is set)")
		replDir       = flag.String("repl_dir", "", "replication working directory for full-sync images and replica cursor state (default <dir>-repl when replication is enabled)")
		elastic       = flag.Bool("elastic", false, "place keys on a consistent-hash ring and enable online resharding via RESHARD <n>; -workers only seeds the first open (incompatible with replication)")
		cutoverBudget = flag.Duration("cutover_budget", 0, "max writer pause per reshard cutover attempt (0 = default 10ms)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)

	var policy p2kvs.AdmissionPolicy
	switch *admission {
	case "block":
		policy = p2kvs.AdmitBlock
	case "reject":
		policy = p2kvs.AdmitReject
	case "wait":
		policy = p2kvs.AdmitWait
	default:
		fmt.Fprintf(os.Stderr, "p2kvs-server: unknown admission policy %q\n", *admission)
		os.Exit(2)
	}

	var (
		syncPolicy   p2kvs.SyncPolicy
		syncInterval time.Duration
	)
	switch *walSync {
	case "":
		// Defer to -sync.
	case "never":
		syncPolicy = p2kvs.SyncNever
		*syncWAL = false
	case "commit":
		syncPolicy = p2kvs.SyncOnCommit
	default:
		d, err := time.ParseDuration(*walSync)
		if err != nil || d <= 0 {
			fmt.Fprintf(os.Stderr, "p2kvs-server: -wal_sync must be never, commit, or a positive duration, got %q\n", *walSync)
			os.Exit(2)
		}
		syncPolicy, syncInterval = p2kvs.SyncInterval, d
	}

	// -replicaof or -repl_dir implies replication; default the backlog and
	// working directory from the data directory when left unset.
	backlog := *replBacklog
	if backlog == 0 && (*replicaOf != "" || *replDir != "") {
		backlog = -1 // default retention
	}
	rdir := *replDir
	if rdir == "" && backlog != 0 {
		rdir = *dir + "-repl"
	}

	storeOpts := p2kvs.Options{
		Dir:      *dir,
		Workers:  *workers,
		Engine:   p2kvs.EngineKind(*engine),
		InMemory: *inMemory,
		SyncWAL:  *syncWAL,

		WALSync:         syncPolicy,
		WALSyncInterval: syncInterval,

		Admission:    policy,
		QueueDepth:   *queueDepth,
		MaxBatch:     *maxBatch,
		DrainTimeout: *drainTimeout,

		MaxBackgroundCompactions: *maxBgComp,
		MaxSubCompactions:        *subComp,
		L0SlowdownTrigger:        *l0Slowdown,

		ScrubInterval: *scrubIvl,
		ScrubRate:     *scrubRate,
		RepairFrom:    repairDir(*repairFrom, *ckptDir),

		HotCacheBytes:    *hotCache,
		ReplBacklogBytes: backlog,

		Elastic:       *elastic,
		CutoverBudget: *cutoverBudget,
	}
	store, err := p2kvs.Open(storeOpts)
	if err != nil {
		logger.Fatalf("p2kvs-server: open store: %v", err)
	}

	cfg := server.Config{
		Addr:            *addr,
		Store:           store,
		CommandTimeout:  *cmdTimeout,
		MaxConns:        *maxConns,
		MaxPipeline:     *maxPipeline,
		ConnIdleTimeout: *idleTimeout,
		WriteTimeout:    *writeTimeout,
		DebugAddr:       *debugAddr,
		CheckpointDir:   *ckptDir,
		Logf:            logger.Printf,
	}
	if backlog != 0 {
		cfg.ReplDir = rdir
		cfg.ReplicaOf = *replicaOf
		// A full sync replaces the data directory wholesale: wipe it, then
		// restore the received image into a fresh store with the same
		// shape. The staged image lives on the host filesystem (ReplFS nil
		// = OS), so p2kvs.Restore's manifest verification runs against it.
		cfg.RestoreStore = func(_ vfs.FS, srcDir string) (*p2kvs.Store, error) {
			if err := os.RemoveAll(*dir); err != nil {
				return nil, err
			}
			return p2kvs.Restore(srcDir, storeOpts)
		}
	}
	srv := server.New(cfg)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("p2kvs-server: received %s, draining", sig)
	case <-srv.ShutdownSignal():
		logger.Printf("p2kvs-server: SHUTDOWN command received, draining")
	case err := <-serveErr:
		logger.Fatalf("p2kvs-server: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Fatalf("p2kvs-server: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		logger.Fatalf("p2kvs-server: serve: %v", err)
	}
	logger.Printf("p2kvs-server: clean shutdown")
}

// repairDir resolves -repair_from: explicit value wins, else the BGSAVE
// directory doubles as the repair source (repairs draw from the newest
// backup the server itself has taken).
func repairDir(explicit, ckptDir string) string {
	if explicit != "" {
		return explicit
	}
	return ckptDir
}
