// Command ycsb runs a single YCSB workload phase against any of the
// engines in this repository, standalone or under p2KVS, and prints
// throughput and latency percentiles. It is the standalone counterpart
// of the Figure 16/20 runners for ad-hoc exploration.
//
// Example:
//
//	ycsb -workload A -engine rocksdb -p2 -workers 8 -threads 16 -ops 100000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"p2kvs"
	"p2kvs/internal/histogram"
	"p2kvs/internal/kv"
	"p2kvs/internal/workload"
	"p2kvs/internal/ycsb"
)

func main() {
	var (
		workloadName = flag.String("workload", "A", "YCSB workload: LOAD, A-F")
		engine       = flag.String("engine", "rocksdb", "engine: rocksdb, leveldb, pebblesdb, wiredtiger, kvell")
		p2           = flag.Bool("p2", true, "run under p2KVS (false = single instance)")
		workers      = flag.Int("workers", 8, "p2KVS worker count")
		threads      = flag.Int("threads", 8, "client threads")
		ops          = flag.Int("ops", 100000, "operations to run")
		load         = flag.Int("load", 50000, "keys to preload (non-LOAD workloads)")
		valueSize    = flag.Int("value", 128, "value size")
		dir          = flag.String("dir", "", "data directory (default: in-memory)")
		dev          = flag.String("device", "", "simulated device: nvme, sata, hdd (default none)")
		scale        = flag.Float64("devscale", 1.0, "simulated device time scale")
	)
	flag.Parse()

	spec, ok := ycsb.Workloads[*workloadName]
	if !ok {
		fmt.Fprintf(os.Stderr, "ycsb: unknown workload %q\n", *workloadName)
		os.Exit(2)
	}
	w := *workers
	if !*p2 {
		w = 1
	}
	opts := p2kvs.Options{
		Dir:            orDefault(*dir, "ycsb-db"),
		Workers:        w,
		Engine:         p2kvs.EngineKind(*engine),
		InMemory:       *dir == "",
		SimulateDevice: *dev,
		DeviceScale:    *scale,
	}
	store, err := p2kvs.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ycsb:", err)
		os.Exit(1)
	}
	defer store.Close()

	loaded := uint64(*load)
	if spec.Name != "LOAD" {
		fmt.Fprintf(os.Stderr, "loading %d keys...\n", *load)
		for i := 0; i < *load; i++ {
			if err := store.Put(workload.Key(uint64(i)), workload.Value(uint64(i), *valueSize)); err != nil {
				fmt.Fprintln(os.Stderr, "ycsb load:", err)
				os.Exit(1)
			}
		}
		if err := store.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "ycsb flush:", err)
			os.Exit(1)
		}
	}

	frontier := ycsb.NewFrontier(loaded)
	var h histogram.H
	perThread := *ops / *threads
	var wg sync.WaitGroup
	errCh := make(chan error, *threads)
	start := time.Now()
	for t := 0; t < *threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			gen := ycsb.NewGenerator(spec, loaded, frontier, int64(tid+1))
			for i := 0; i < perThread; i++ {
				op := gen.Next()
				key := workload.Key(op.KeyIdx)
				opStart := time.Now()
				var err error
				switch op.Type {
				case ycsb.OpInsert, ycsb.OpUpdate:
					err = store.Put(key, workload.Value(op.KeyIdx, *valueSize))
				case ycsb.OpRead:
					_, err = store.Get(key)
					if err == kv.ErrNotFound {
						err = nil
					}
				case ycsb.OpScan:
					_, err = store.Scan(key, op.ScanLen)
				case ycsb.OpRMW:
					if _, err = store.Get(key); err == kv.ErrNotFound {
						err = nil
					}
					if err == nil {
						err = store.Put(key, workload.Value(op.KeyIdx, *valueSize))
					}
				}
				h.Record(time.Since(opStart))
				if err != nil {
					errCh <- err
					return
				}
			}
		}(t)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "ycsb:", err)
		os.Exit(1)
	default:
	}
	elapsed := time.Since(start)
	total := perThread * *threads
	fmt.Printf("workload=%s engine=%s p2=%v workers=%d threads=%d\n",
		spec.Name, *engine, *p2, w, *threads)
	fmt.Printf("ops=%d elapsed=%v qps=%.0f\n", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("latency: %v\n", h.String())
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
