// Command dbbench is this repository's counterpart of RocksDB's db_bench
// — the tool the paper's micro-benchmarks and artifact use. It runs the
// standard workloads (fillseq, fillrandom, updaterandom, readseq,
// readrandom, scan) against any engine, standalone or under p2KVS,
// optionally behind a simulated device, and prints db_bench-style result
// lines.
//
// Example:
//
//	dbbench -benchmarks fillrandom,readrandom -num 100000 -threads 8 \
//	        -engine rocksdb -p2 -workers 8 -device nvme -devscale 0.02
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs"
	"p2kvs/internal/histogram"
	"p2kvs/internal/kv"
	"p2kvs/internal/workload"
)

func main() {
	var (
		benchmarks = flag.String("benchmarks", "fillseq,readrandom", "comma-separated workload list")
		num        = flag.Int("num", 100000, "number of operations per workload")
		valueSize  = flag.Int("value_size", 128, "value size in bytes")
		threads    = flag.Int("threads", 1, "concurrent client threads")
		engine     = flag.String("engine", "rocksdb", "engine: rocksdb, leveldb, pebblesdb, wiredtiger, kvell")
		p2         = flag.Bool("p2", false, "run under p2KVS")
		workers    = flag.Int("workers", 8, "p2KVS worker count")
		dir        = flag.String("dir", "", "data directory (default: in-memory)")
		dev        = flag.String("device", "", "simulated device: nvme, sata, hdd")
		devScale   = flag.Float64("devscale", 1.0, "simulated device time scale")
		scanSize   = flag.Int("scan_size", 100, "keys per scan op")
		syncWAL    = flag.Bool("sync", false, "fsync per commit")
		admission  = flag.String("admission", "block", "admission policy: block, reject, wait")
		opDeadline = flag.Duration("op_deadline", 0, "per-op deadline (0 = none); rejected/expired ops are counted, not fatal")
		queueDepth = flag.Int("queue_depth", 0, "per-worker queue depth (0 = default 4096)")
		statsJSON  = flag.Bool("stats_json", false, "print the store's StatsJSON document after the run")
		maxBgComp  = flag.Int("max_bg_compactions", 0, "concurrent compactions per LSM instance (0 = default 2)")
		subComp    = flag.Int("subcompactions", 0, "parallel key-range splits per compaction (0 = default 1, off)")
		l0Slowdown = flag.Int("l0_slowdown", 0, "L0 file count that soft-delays writers (0 = engine default)")
		ckptEvery  = flag.Int("checkpoint_every", 0, "take an online checkpoint every N completed ops (0 = off)")
		ckptDir    = flag.String("checkpoint_dir", "dbbench-backup", "backup set -checkpoint_every writes into")
		verify     = flag.Bool("verify", false, "paranoid reads: check every read value against the workload pattern; corruption errors are counted, a silently wrong value is fatal")
		hotCache   = flag.Int64("hot_cache", 0, "hot-key read cache budget in bytes; hits bypass queue admission (-1 = default 32 MiB; 0 disables)")
		hcBench    = flag.Bool("hotcache_bench", false, "run the hot-cache before/after benchmark instead of -benchmarks: zipfian YCSB-C and YCSB-B phases against cache-off and cache-on stores, emitted as a BENCH json line")
		elastic    = flag.Bool("elastic", false, "open the store elastic (consistent-hash ring + online resharding)")
		reshardAt  = flag.Int("reshard_at", 0, "trigger an online reshard after this many completed ops (0 = never; requires -elastic)")
		reshardTo  = flag.Int("reshard_to", 0, "worker count the -reshard_at reshard grows/shrinks to")
		cutoverBgt = flag.Duration("cutover_budget", 0, "max writer pause per reshard cutover attempt (0 = default 10ms); with -verify, a pause over budget fails the run")
	)
	flag.Parse()
	verifier.on = *verify

	var policy p2kvs.AdmissionPolicy
	switch *admission {
	case "block":
		policy = p2kvs.AdmitBlock
	case "reject":
		policy = p2kvs.AdmitReject
	case "wait":
		policy = p2kvs.AdmitWait
	default:
		fmt.Fprintf(os.Stderr, "dbbench: unknown admission policy %q\n", *admission)
		os.Exit(2)
	}

	w := 1
	if *p2 {
		w = *workers
	}
	if *hcBench {
		runHotCacheBench(hotCacheBenchConfig{
			engine: *engine, workers: w, num: *num, valueSize: *valueSize,
			threads: *threads, device: *dev, devScale: *devScale,
			cacheBytes: *hotCache,
		})
		return
	}
	store, err := p2kvs.Open(p2kvs.Options{
		Dir:            orDefault(*dir, "dbbench-db"),
		Workers:        w,
		Engine:         p2kvs.EngineKind(*engine),
		InMemory:       *dir == "",
		SimulateDevice: *dev,
		DeviceScale:    *devScale,
		SyncWAL:        *syncWAL,
		Admission:      policy,
		QueueDepth:     *queueDepth,

		MaxBackgroundCompactions: *maxBgComp,
		MaxSubCompactions:        *subComp,
		L0SlowdownTrigger:        *l0Slowdown,

		HotCacheBytes: *hotCache,

		Elastic:       *elastic,
		CutoverBudget: *cutoverBgt,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbbench:", err)
		os.Exit(1)
	}
	defer store.Close()

	if *ckptEvery > 0 {
		saver.start(store, *ckptEvery, *ckptDir)
	}
	if *reshardAt > 0 {
		if !*elastic {
			fmt.Fprintln(os.Stderr, "dbbench: -reshard_at requires -elastic")
			os.Exit(2)
		}
		if *reshardTo < 1 {
			fmt.Fprintln(os.Stderr, "dbbench: -reshard_at requires -reshard_to >= 1")
			os.Exit(2)
		}
		resharder.arm(store, int64(*reshardAt), *reshardTo)
	}

	fmt.Printf("engine=%s p2=%v workers=%d threads=%d num=%d value=%dB device=%q\n",
		*engine, *p2, w, *threads, *num, *valueSize, *dev)
	loaded := false
	type namedSummary struct {
		name string
		sum  histogram.Summary
	}
	var latencies []namedSummary
	for _, name := range strings.Split(*benchmarks, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		needsData := name == "readseq" || name == "readrandom" || name == "updaterandom" || name == "scan" ||
			name == "readzipfian" || name == "updatezipfian"
		if needsData && !loaded {
			fmt.Fprintf(os.Stderr, "(implicit fillseq to populate %d keys)\n", *num)
			runOne(store, "fillseq", *num, *valueSize, 1, *scanSize, 0, false)
			loaded = true
		}
		if name == "fillseq" || name == "fillrandom" {
			loaded = true
		}
		h := runOne(store, name, *num, *valueSize, *threads, *scanSize, *opDeadline, true)
		latencies = append(latencies, namedSummary{name, h.Summary()})
	}
	saver.stop()
	resharder.wait()
	reportVerify()
	reportReshard(store, *cutoverBgt)
	reportRobustness(store)
	reportOverload(store)
	reportCompaction(store)
	reportCheckpoint(store)
	for _, ls := range latencies {
		fmt.Printf("latency %-12s: p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus (n=%d)\n",
			ls.name, ls.sum.P50Us, ls.sum.P95Us, ls.sum.P99Us, ls.sum.MaxUs, ls.sum.Count)
	}
	if *statsJSON {
		raw, err := store.StatsJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbbench:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
	}
}

// verifier holds -verify mode state. The split matters: a corruption
// error is the store refusing to serve damaged data (working as designed,
// counted), while a value mismatch is a silent lie and fails the bench.
var verifier struct {
	on          bool
	reads       atomic.Int64
	corruptions atomic.Int64
	mismatches  atomic.Int64
}

// reportVerify prints the paranoid-read summary and fails the run on any
// silently wrong value.
func reportVerify() {
	if !verifier.on {
		return
	}
	fmt.Printf("corruption     : %d reads verified; %d corruption errors (loud); %d silent mismatches\n",
		verifier.reads.Load(), verifier.corruptions.Load(), verifier.mismatches.Load())
	if verifier.mismatches.Load() > 0 {
		fmt.Fprintln(os.Stderr, "dbbench: FATAL: store served silently wrong values")
		os.Exit(1)
	}
}

// liveResharder fires one online reshard mid-workload: once the worker
// threads have completed -reshard_at ops, a dedicated goroutine calls
// Store.Reshard(-reshard_to) while the workload keeps hammering the
// store — the elasticity claim measured, not simulated.
type liveResharder struct {
	at    int64
	to    int
	store *p2kvs.Store
	ops   atomic.Int64
	done  chan struct{}
	err   error
	took  time.Duration
}

var resharder liveResharder

func (r *liveResharder) arm(store *p2kvs.Store, at int64, to int) {
	r.store, r.at, r.to = store, at, to
	r.done = make(chan struct{})
}

// tick is called by every worker thread after each completed op; the
// thread that crosses the threshold launches the reshard.
func (r *liveResharder) tick() {
	if r.at == 0 {
		return
	}
	if r.ops.Add(1) != r.at {
		return
	}
	go func() {
		defer close(r.done)
		fmt.Fprintf(os.Stderr, "(reshard to %d workers starting at op %d)\n", r.to, r.at)
		start := time.Now()
		r.err = r.store.Reshard(context.Background(), r.to)
		r.took = time.Since(start)
	}()
}

// wait blocks until a launched reshard finishes; a threshold never
// reached (num < reshard_at) is reported, not hung on.
func (r *liveResharder) wait() {
	if r.at == 0 {
		return
	}
	if r.ops.Load() < r.at {
		fmt.Fprintf(os.Stderr, "dbbench: -reshard_at %d never reached (%d ops ran); reshard skipped\n", r.at, r.ops.Load())
		return
	}
	<-r.done
}

// reportReshard prints the online-reshard summary and enforces the
// acceptance gates: a failed reshard is always fatal; under -verify a
// cutover pause over budget is too.
func reportReshard(store *p2kvs.Store, budget time.Duration) {
	if resharder.at == 0 || resharder.ops.Load() < resharder.at {
		return
	}
	if resharder.err != nil {
		fmt.Fprintln(os.Stderr, "dbbench: FATAL: reshard failed:", resharder.err)
		os.Exit(1)
	}
	if budget == 0 {
		budget = 10 * time.Millisecond
	}
	st := store.ReshardStats()
	fmt.Printf("reshard        : %d->%d workers in %.1fms; moved %d keys (%d bytes); double_writes=%d stale_skipped=%d; cutover pause=%.1fus (budget %.1fus, retries=%d)\n",
		st.From, st.To, float64(resharder.took.Microseconds())/1000,
		st.MovedKeys, st.MovedBytes, st.DoubleWrites, st.SkippedStale,
		float64(st.BarrierNs)/1000, float64(budget.Microseconds()), st.CutoverRetries)
	if verifier.on && st.BarrierNs > budget.Nanoseconds() {
		fmt.Fprintf(os.Stderr, "dbbench: FATAL: cutover paused writers %.1fus, over the %.1fus budget\n",
			float64(st.BarrierNs)/1000, float64(budget.Microseconds()))
		os.Exit(1)
	}
}

// checkpointSaver takes online checkpoints while the workloads run: every
// N completed ops the worker threads nudge a dedicated goroutine, which
// backs the store up into a single incremental set. Triggers arriving
// while a save is in flight coalesce into one.
type checkpointSaver struct {
	every   int64
	ops     atomic.Int64
	trigger chan struct{}
	done    chan struct{}
	fails   atomic.Int64
}

var saver checkpointSaver

func (c *checkpointSaver) start(store *p2kvs.Store, every int, dir string) {
	c.every = int64(every)
	c.trigger = make(chan struct{}, 1)
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		for range c.trigger {
			if _, err := p2kvs.Backup(store, dir); err != nil {
				c.fails.Add(1)
				fmt.Fprintln(os.Stderr, "dbbench: checkpoint:", err)
			}
		}
	}()
}

// tick is called by every worker thread after each completed op.
func (c *checkpointSaver) tick() {
	if c.every == 0 {
		return
	}
	if c.ops.Add(1)%c.every == 0 {
		select {
		case c.trigger <- struct{}{}:
		default: // a save is already pending; coalesce
		}
	}
}

func (c *checkpointSaver) stop() {
	if c.every == 0 {
		return
	}
	close(c.trigger)
	<-c.done
}

// reportCheckpoint prints the online-checkpoint summary: how many
// checkpoints committed, the last barrier pause (the write-stall cost of
// a save), and how the image was materialized.
func reportCheckpoint(store *p2kvs.Store) {
	if store.Checkpoints() == 0 {
		return
	}
	var files p2kvs.WorkerStats
	for _, ws := range store.Stats() {
		files.Checkpoint.FilesLinked += ws.Checkpoint.FilesLinked
		files.Checkpoint.FilesCopied += ws.Checkpoint.FilesCopied
		files.Checkpoint.FilesReused += ws.Checkpoint.FilesReused
		files.Checkpoint.BytesCopied += ws.Checkpoint.BytesCopied
	}
	line := fmt.Sprintf("checkpoint     : %d checkpoints; barrier=%s; %d linked, %d copied, %d reused; %d bytes copied",
		store.Checkpoints(), time.Duration(store.CheckpointBarrierNs()),
		files.Checkpoint.FilesLinked, files.Checkpoint.FilesCopied, files.Checkpoint.FilesReused,
		files.Checkpoint.BytesCopied)
	if f := saver.fails.Load(); f > 0 {
		line += fmt.Sprintf("; %d FAILED", f)
	}
	fmt.Println(line)
}

// reportOverload prints the request-lifecycle summary: admission
// rejections, deadline expiries, worker-side shedding and queue depth
// high-water marks. One aggregate line; per-worker lines only when some
// worker actually rejected or shed work.
func reportOverload(store *p2kvs.Store) {
	stats := store.Stats()
	var rejected, expired, shed int64
	maxDepth := 0
	for _, ws := range stats {
		rejected += ws.Rejected
		expired += ws.Expired
		shed += ws.Shed
		if ws.QueueHighWater > maxDepth {
			maxDepth = ws.QueueHighWater
		}
	}
	fmt.Printf("overload       : %d rejected; %d expired; %d shed; max queue depth %d\n",
		rejected, expired, shed, maxDepth)
	if rejected == 0 && expired == 0 && shed == 0 {
		return
	}
	for _, ws := range stats {
		if ws.Rejected == 0 && ws.Expired == 0 && ws.Shed == 0 {
			continue
		}
		fmt.Printf("overload w%-2d   : rejected=%d expired=%d shed=%d queue_hw=%d\n",
			ws.ID, ws.Rejected, ws.Expired, ws.Shed, ws.QueueHighWater)
	}
}

// reportCompaction prints the compaction-scheduler summary, keeping hard
// stall time and soft slowdown time separate so the two backpressure
// tiers are distinguishable in results.
func reportCompaction(store *p2kvs.Store) {
	stats := store.Stats()
	var c p2kvs.WorkerStats
	for _, ws := range stats {
		c.Compaction.Compactions += ws.Compaction.Compactions
		c.Compaction.Subcompactions += ws.Compaction.Subcompactions
		c.Compaction.StallTime += ws.Compaction.StallTime
		c.Compaction.SlowdownTime += ws.Compaction.SlowdownTime
		c.Compaction.Slowdowns += ws.Compaction.Slowdowns
		if ws.Compaction.MaxConcurrent > c.Compaction.MaxConcurrent {
			c.Compaction.MaxConcurrent = ws.Compaction.MaxConcurrent
		}
	}
	fmt.Printf("compaction     : %d compactions (%d sub); concurrent high-water %d; stall=%dms slowdown=%dms (%d slowdowns)\n",
		c.Compaction.Compactions, c.Compaction.Subcompactions, c.Compaction.MaxConcurrent,
		c.Compaction.StallTime.Milliseconds(), c.Compaction.SlowdownTime.Milliseconds(), c.Compaction.Slowdowns)
}

// reportRobustness prints the per-worker background-error summary:
// health state, flush/compaction retries and injected faults (non-zero
// only under the fault-injection VFS). One aggregate line when all
// workers stayed clean, per-worker lines otherwise.
func reportRobustness(store *p2kvs.Store) {
	stats := store.Stats()
	dirty := false
	for _, ws := range stats {
		h := ws.Health
		if h.State != kv.StateHealthy || h.FlushRetries != 0 || h.CompactRetries != 0 || h.InjectedFaults != 0 {
			dirty = true
			break
		}
	}
	if !dirty {
		fmt.Printf("robustness     : %d workers healthy; 0 flush retries; 0 compaction retries\n", len(stats))
		return
	}
	for _, ws := range stats {
		h := ws.Health
		fmt.Printf("robustness w%-2d : state=%s flush_retries=%d compact_retries=%d injected_faults=%d",
			ws.ID, h.State, h.FlushRetries, h.CompactRetries, h.InjectedFaults)
		if h.Err != nil {
			fmt.Printf(" err=%q", h.Err)
		}
		fmt.Println()
	}
}

func runOne(store *p2kvs.Store, name string, num, valueSize, threads, scanSize int, opDeadline time.Duration, report bool) *histogram.H {
	var h histogram.H
	perThread := num / threads
	if perThread < 1 {
		perThread = 1
	}
	var wg sync.WaitGroup
	var dropped atomic.Int64
	errCh := make(chan error, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			if err := runThread(store, name, tid, perThread, num, valueSize, scanSize, opDeadline, &h, &dropped); err != nil {
				errCh <- err
			}
		}(t)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "dbbench:", err)
		os.Exit(1)
	default:
	}
	if !report {
		return &h
	}
	elapsed := time.Since(start)
	ops := perThread * threads
	microsPerOp := float64(elapsed.Microseconds()) / float64(ops) * float64(threads)
	mbps := float64(ops) * float64(valueSize+16) / elapsed.Seconds() / 1e6
	line := fmt.Sprintf("%-14s : %10.3f micros/op; %8.1f ops/sec; %7.1f MB/s; %s",
		name, microsPerOp, float64(ops)/elapsed.Seconds(), mbps, h.String())
	if d := dropped.Load(); d > 0 {
		line += fmt.Sprintf("; %d dropped (overload/deadline)", d)
	}
	fmt.Println(line)
	return &h
}

func runThread(store *p2kvs.Store, name string, tid, perThread, num, valueSize, scanSize int, opDeadline time.Duration, h *histogram.H, dropped *atomic.Int64) error {
	kind, isRead, isScan, isZipf := parseWorkload(name)
	var ch workload.Chooser
	switch {
	case isScan:
		ch = workload.NewUniform(uint64(num), int64(tid+1))
	case isZipf:
		ch = workload.NewZipfian(uint64(num), int64(tid+1))
	default:
		ch = workload.Micro(kind, uint64(num), int64(tid+1))
	}
	for i := 0; i < perThread; i++ {
		idx := ch.Next()
		opStart := time.Now()
		ctx := context.Background()
		cancel := func() {}
		if opDeadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, opDeadline)
		}
		var err error
		switch {
		case isScan:
			_, err = store.ScanCtx(ctx, workload.Key(idx), scanSize)
		case isRead:
			var got []byte
			got, err = store.GetCtx(ctx, workload.Key(idx))
			if err == kv.ErrNotFound {
				err = nil
			} else if verifier.on && err == nil {
				verifier.reads.Add(1)
				if !bytes.Equal(got, workload.Value(idx, valueSize)) {
					verifier.mismatches.Add(1)
				}
			}
		default:
			err = store.PutCtx(ctx, workload.Key(idx), workload.Value(idx, valueSize))
		}
		cancel()
		h.Record(time.Since(opStart))
		saver.tick()
		resharder.tick()
		if verifier.on && errors.Is(err, kv.ErrCorruption) {
			// A loud corruption error is the store refusing to lie; paranoid
			// mode counts it and keeps going so the damage extent shows in
			// the final report. Only a silent mismatch fails the run.
			verifier.corruptions.Add(1)
			err = nil
		}
		if errors.Is(err, kv.ErrOverloaded) || errors.Is(err, kv.ErrDeadlineExceeded) {
			dropped.Add(1)
			err = nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func parseWorkload(name string) (kind workload.MicroKind, isRead, isScan, isZipf bool) {
	switch name {
	case "fillseq":
		return workload.FillSeq, false, false, false
	case "fillrandom":
		return workload.FillRandom, false, false, false
	case "updaterandom":
		return workload.UpdateRandom, false, false, false
	case "updatezipfian":
		return "", false, false, true
	case "readseq":
		return workload.ReadSeq, true, false, false
	case "readrandom":
		return workload.ReadRandom, true, false, false
	case "readzipfian":
		return "", true, false, true
	case "scan":
		return "", false, true, false
	default:
		fmt.Fprintf(os.Stderr, "dbbench: unknown workload %q\n", name)
		os.Exit(2)
		return
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
