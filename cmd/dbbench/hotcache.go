// The -hotcache_bench mode: a before/after measurement of the hot-key
// read cache under skewed load. Two identical stores are built over the
// same simulated device profile — one with the cache disabled, one with
// it enabled — loaded with the same keys, and driven through a zipfian
// YCSB-C phase (100% reads) and a YCSB-B phase (95% reads / 5% writes).
// The result is emitted as a single BENCH json line for scripted
// consumption; the headline number is the YCSB-C speedup.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs"
	"p2kvs/internal/workload"
)

type hotCacheBenchConfig struct {
	engine     string
	workers    int
	num        int
	valueSize  int
	threads    int
	device     string
	devScale   float64
	cacheBytes int64
}

// hotCacheBenchResult is the BENCH json schema for -hotcache_bench.
type hotCacheBenchResult struct {
	Benchmark     string  `json:"benchmark"`
	Engine        string  `json:"engine"`
	Workers       int     `json:"workers"`
	Keys          int     `json:"keys"`
	ValueSize     int     `json:"value_size"`
	Threads       int     `json:"threads"`
	Device        string  `json:"device"`
	DeviceScale   float64 `json:"device_scale"`
	CacheBytes    int64   `json:"cache_bytes"`
	YcsbCOpsOff   float64 `json:"ycsbc_ops_nocache"`
	YcsbCOpsOn    float64 `json:"ycsbc_ops_cache"`
	YcsbCSpeedup  float64 `json:"ycsbc_speedup"`
	YcsbBOpsOff   float64 `json:"ycsbb_ops_nocache"`
	YcsbBOpsOn    float64 `json:"ycsbb_ops_cache"`
	YcsbBSpeedup  float64 `json:"ycsbb_speedup"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Invalidations int64   `json:"cache_invalidations"`
}

func runHotCacheBench(cfg hotCacheBenchConfig) {
	fail := func(stage string, err error) {
		fmt.Fprintf(os.Stderr, "dbbench: hotcache %s: %v\n", stage, err)
		os.Exit(1)
	}
	if cfg.cacheBytes == 0 {
		cfg.cacheBytes = -1 // default budget; 0 would bench nothing
	}
	if cfg.device == "" {
		cfg.device = "sata"
	}
	fmt.Printf("hotcache bench: engine=%s workers=%d keys=%d value=%dB threads=%d device=%s scale=%g cache=%d\n",
		cfg.engine, cfg.workers, cfg.num, cfg.valueSize, cfg.threads, cfg.device, cfg.devScale, cfg.cacheBytes)

	boot := func(dir string, cache int64) *p2kvs.Store {
		s, err := p2kvs.Open(p2kvs.Options{
			Dir:            dir,
			Workers:        cfg.workers,
			Engine:         p2kvs.EngineKind(cfg.engine),
			InMemory:       true,
			SimulateDevice: cfg.device,
			DeviceScale:    cfg.devScale,
			HotCacheBytes:  cache,
		})
		if err != nil {
			fail("open", err)
		}
		return s
	}
	load := func(s *p2kvs.Store) {
		var b p2kvs.Batch
		for i := 0; i < cfg.num; i++ {
			b.Put(workload.Key(uint64(i)), workload.Value(uint64(i), cfg.valueSize))
			if b.Len() == 128 || i == cfg.num-1 {
				if err := s.Write(&b); err != nil {
					fail("load", err)
				}
				b.Reset()
			}
		}
		// Flush so reads hit SSTs (and the device), not just memtables —
		// the cache-off baseline must pay the real read path.
		if err := s.Flush(); err != nil {
			fail("flush", err)
		}
	}
	// measure drives cfg.num zipfian ops across cfg.threads goroutines;
	// writePct of them are Puts (YCSB-B = 5, YCSB-C = 0).
	measure := func(s *p2kvs.Store, writePct int, seedBase int64) float64 {
		perThread := cfg.num / cfg.threads
		if perThread < 1 {
			perThread = 1
		}
		var wg sync.WaitGroup
		var failed atomic.Value
		start := time.Now()
		for t := 0; t < cfg.threads; t++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				ch := workload.NewZipfian(uint64(cfg.num), seedBase+int64(tid))
				for i := 0; i < perThread; i++ {
					idx := ch.Next()
					var err error
					if writePct > 0 && i%(100/writePct) == 0 {
						err = s.Put(workload.Key(idx), workload.Value(idx, cfg.valueSize))
					} else {
						_, err = s.Get(workload.Key(idx))
					}
					if err != nil {
						failed.Store(err)
						return
					}
				}
			}(t)
		}
		wg.Wait()
		if err := failed.Load(); err != nil {
			fail("measure", err.(error))
		}
		return float64(perThread*cfg.threads) / time.Since(start).Seconds()
	}

	// Baseline: cache off.
	off := boot("hotcache-off", 0)
	load(off)
	cOff := measure(off, 0, 1)
	bOff := measure(off, 5, 101)
	off.Close()
	fmt.Printf("ycsb-c nocache : %12.0f ops/sec\n", cOff)
	fmt.Printf("ycsb-b nocache : %12.0f ops/sec\n", bOff)

	// Under test: cache on. A warm pass populates the hot set before
	// measurement, as any steady-state serving tier would be.
	on := boot("hotcache-on", cfg.cacheBytes)
	load(on)
	measure(on, 0, 1)
	cOn := measure(on, 0, 1)
	bOn := measure(on, 5, 101)
	snap := on.StatsSnapshot()
	on.Close()
	fmt.Printf("ycsb-c cache   : %12.0f ops/sec (%.2fx)\n", cOn, cOn/cOff)
	fmt.Printf("ycsb-b cache   : %12.0f ops/sec (%.2fx)\n", bOn, bOn/bOff)
	hitRate := 0.0
	if tot := snap.CacheHits + snap.CacheNegHits + snap.CacheMisses; tot > 0 {
		hitRate = float64(snap.CacheHits+snap.CacheNegHits) / float64(tot)
	}
	fmt.Printf("cache          : hits=%d misses=%d hit_rate=%.3f invalidations=%d\n",
		snap.CacheHits, snap.CacheMisses, hitRate, snap.CacheInvalidations)

	res := hotCacheBenchResult{
		Benchmark:     "hotcache",
		Engine:        cfg.engine,
		Workers:       cfg.workers,
		Keys:          cfg.num,
		ValueSize:     cfg.valueSize,
		Threads:       cfg.threads,
		Device:        cfg.device,
		DeviceScale:   cfg.devScale,
		CacheBytes:    cfg.cacheBytes,
		YcsbCOpsOff:   cOff,
		YcsbCOpsOn:    cOn,
		YcsbCSpeedup:  cOn / cOff,
		YcsbBOpsOff:   bOff,
		YcsbBOpsOn:    bOn,
		YcsbBSpeedup:  bOn / bOff,
		CacheHits:     snap.CacheHits,
		CacheMisses:   snap.CacheMisses,
		CacheHitRate:  hitRate,
		Invalidations: snap.CacheInvalidations,
	}
	out, _ := json.Marshal(res)
	fmt.Printf("BENCH %s\n", out)
}
