// Command p2kvs-bench regenerates the paper's tables and figures. Each
// subcommand corresponds to one experiment ID from DESIGN.md's
// per-experiment index; "all" runs everything.
//
// Usage:
//
//	p2kvs-bench [flags] <experiment>...
//	p2kvs-bench -list
//	p2kvs-bench -quick all
//
// All experiments run against the simulated device models (see
// internal/device); throughput is reported in simulated QPS as described
// in internal/bench.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p2kvs/internal/bench"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment names and exit")
		quick  = flag.Bool("quick", false, "shrink budgets for a fast smoke run")
		budget = flag.Duration("budget", 2*time.Second, "wall-clock budget per measured cell")
		keys   = flag.Int("keys", 20000, "preloaded key-space size")
		value  = flag.Int("value", 128, "value size in bytes")
		maxOps = flag.Int("maxops", 40000, "max operations per cell")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.Names() {
			fmt.Println(name)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: p2kvs-bench [flags] <experiment>...|all (see -list)")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = bench.Names()
	}

	env := bench.Env{
		Out:       os.Stdout,
		Quick:     *quick,
		Budget:    *budget,
		Keys:      *keys,
		ValueSize: *value,
		MaxOps:    *maxOps,
	}
	for _, name := range args {
		start := time.Now()
		if _, err := bench.Run(name, env); err != nil {
			fmt.Fprintf(os.Stderr, "p2kvs-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
