// Command netbench is a concurrent RESP load generator for p2kvs-server:
// N connections × a configurable pipeline depth, uniform / zipfian /
// sequential key choice, SET / GET / mixed phases. It reports throughput
// and pipeline round-trip latency quantiles, plus the server-side
// coalescing counters pulled from INFO — the observable proof that
// pipelined runs reached the engine as WriteBatch / multiget calls.
//
// Example:
//
//	netbench -addr 127.0.0.1:6380 -conns 8 -pipeline 16 -num 200000 \
//	         -benchmarks set,get,mixed -dist zipfian
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/ackedlog"
	"p2kvs/internal/histogram"
	"p2kvs/internal/server"
	"p2kvs/internal/workload"
)

// ackedW, when non-nil, journals every SET the server acknowledged
// (-acked_log). A crash-recovery harness replays the journal after a
// server restart to prove no acked write was lost.
var ackedW *ackedlog.Writer

// verifier, when enabled (-verify), checks every GET hit against the
// deterministic workload pattern. A -CORRUPTION reply is the loud,
// contractual answer for damaged data and is merely counted; a reply
// carrying a *wrong value* is the one unforgivable outcome and fails
// the whole run.
var verifier struct {
	on          bool
	reads       atomic.Int64
	corruptions atomic.Int64
	mismatches  atomic.Int64
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:6380", "server address")
		conns      = flag.Int("conns", 8, "concurrent client connections")
		pipeline   = flag.Int("pipeline", 16, "commands per pipeline window")
		num        = flag.Int("num", 100000, "operations per benchmark phase")
		valueSize  = flag.Int("value_size", 128, "value size in bytes")
		keys       = flag.Int("keys", 0, "keyspace size (0 = num)")
		dist       = flag.String("dist", "uniform", "key distribution: uniform, zipfian, seq")
		benchmarks = flag.String("benchmarks", "set,get", "comma-separated phases: set, get, mixed")
		getRatio   = flag.Float64("get_ratio", 0.9, "GET fraction for the mixed phase")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		bgsave     = flag.Bool("bgsave", false, "issue BGSAVE after the phases and wait for the save to commit")
		ackedLog   = flag.String("acked_log", "", "journal every acked SET (key and value) to this file for later crash-recovery verification")
		verify     = flag.Bool("verify", false, "paranoid reads: check every GET hit against the workload pattern; -CORRUPTION replies are counted, a silently wrong value is fatal")

		clusterMode  = flag.Bool("cluster", false, "in-process cluster scaling benchmark: boots -cluster_nodes primaries (+replicas), compares aggregate batched GET throughput against one node, measures replica staleness, and emits a BENCH json line")
		clusterNodes = flag.Int("cluster_nodes", 3, "primaries in the -cluster tier (2-4 is the intended range)")
		clusterRepl  = flag.Int("cluster_replicas", 1, "read replicas per primary in the -cluster tier")
		clusterWkrs  = flag.Int("cluster_workers", 2, "store workers per node in the -cluster tier")
		clusterBatch = flag.Int("cluster_batch", 128, "keys per MGET/MSET wire batch in the -cluster tier (capped at 1024)")
		clusterSecs  = flag.Duration("cluster_secs", 2*time.Second, "measurement window per -cluster phase")
		clusterDev   = flag.String("cluster_device", "sata", "simulated device under each -cluster node: nvme, sata, hdd, or none (none = unthrottled MemFS; scaling then needs spare host cores)")
		clusterScale = flag.Float64("cluster_device_scale", 5, "time scale for -cluster_device service times (1 = real device speed; the default slows IO so sub-100us timer quantization stays small next to device service time)")
	)
	flag.Parse()
	if *clusterMode {
		n := *keys
		if n <= 0 {
			n = *num
		}
		runClusterBench(*clusterNodes, *clusterRepl, *clusterWkrs, n, *valueSize, *clusterBatch, *conns, *clusterSecs, *clusterDev, *clusterScale)
		return
	}
	verifier.on = *verify
	if *ackedLog != "" {
		w, err := ackedlog.Create(*ackedLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netbench: acked_log:", err)
			os.Exit(1)
		}
		ackedW = w
		defer w.Close()
	}
	if *keys <= 0 {
		*keys = *num
	}
	if *pipeline < 1 {
		*pipeline = 1
	}

	fmt.Printf("netbench: addr=%s conns=%d pipeline=%d num=%d value=%dB dist=%s\n",
		*addr, *conns, *pipeline, *num, *valueSize, *dist)

	loaded := false
	for _, phase := range strings.Split(*benchmarks, ",") {
		phase = strings.TrimSpace(phase)
		if phase == "" {
			continue
		}
		if (phase == "get" || phase == "mixed") && !loaded {
			fmt.Fprintf(os.Stderr, "(implicit set phase to populate %d keys)\n", *keys)
			runPhase("set", *addr, *conns, *pipeline, *keys, *valueSize, *keys, "seq", *getRatio, *seed, false)
			loaded = true
		}
		if phase == "set" {
			loaded = true
		}
		runPhase(phase, *addr, *conns, *pipeline, *num, *valueSize, *keys, *dist, *getRatio, *seed, true)
	}
	if *bgsave {
		bgsaveAndWait(*addr)
	}
	if verifier.on {
		reportVerify()
	}
	reportServerCounters(*addr)
}

// reportVerify prints the paranoid-read tally and fails the run if any
// GET came back with a silently wrong value — the one outcome the
// integrity machinery exists to make impossible.
func reportVerify() {
	fmt.Printf("corruption     : %8d hits verified; %d -CORRUPTION replies (loud); %d silent mismatches\n",
		verifier.reads.Load(), verifier.corruptions.Load(), verifier.mismatches.Load())
	if verifier.mismatches.Load() > 0 {
		fmt.Fprintln(os.Stderr, "netbench: FATAL: server served silently wrong values")
		os.Exit(1)
	}
}

// chooser builds the per-connection key chooser.
func chooser(dist string, n uint64, seed int64) workload.Chooser {
	switch dist {
	case "uniform":
		return workload.NewUniform(n, seed)
	case "zipfian":
		return workload.NewZipfian(n, seed)
	case "seq":
		return workload.NewSequential(n)
	default:
		fmt.Fprintf(os.Stderr, "netbench: unknown distribution %q\n", dist)
		os.Exit(2)
		return nil
	}
}

type phaseResult struct {
	ops      atomic.Int64
	loadshed atomic.Int64
	timeouts atomic.Int64
	errors   atomic.Int64
	hits     atomic.Int64
	rtt      histogram.H
}

func runPhase(phase, addr string, conns, pipeline, num, valueSize, keyspace int, dist string, getRatio float64, seed int64, report bool) {
	if phase != "set" && phase != "get" && phase != "mixed" {
		fmt.Fprintf(os.Stderr, "netbench: unknown benchmark %q\n", phase)
		os.Exit(2)
	}
	perConn := num / conns
	if perConn < 1 {
		perConn = 1
	}
	var res phaseResult
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := runConn(phase, addr, pipeline, perConn, valueSize, keyspace, dist, getRatio, seed+int64(id), &res); err != nil {
				errCh <- err
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	default:
	}
	if !report {
		return
	}
	ops := res.ops.Load()
	sum := res.rtt.Summary()
	line := fmt.Sprintf("%-5s : %8d ops in %6.2fs; %9.0f ops/sec; rtt(depth=%d) p50=%.0fus p95=%.0fus p99=%.0fus",
		phase, ops, elapsed.Seconds(), float64(ops)/elapsed.Seconds(), pipeline,
		sum.P50Us, sum.P95Us, sum.P99Us)
	if phase != "set" {
		line += fmt.Sprintf("; hits=%d", res.hits.Load())
	}
	if ls, to, er := res.loadshed.Load(), res.timeouts.Load(), res.errors.Load(); ls+to+er > 0 {
		line += fmt.Sprintf("; dropped: %d loadshed, %d timeout, %d error", ls, to, er)
	}
	fmt.Println(line)
}

// runConn drives one connection: windows of `pipeline` commands written
// back-to-back, one flush, then all replies read in order. The recorded
// latency is the whole window's round trip.
func runConn(phase, addr string, pipeline, ops, valueSize, keyspace int, dist string, getRatio float64, seed int64, res *phaseResult) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	rd := server.NewReader(nc)
	wr := server.NewWriter(nc)
	ch := chooser(dist, uint64(keyspace), seed)
	rng := rand.New(rand.NewSource(seed))

	for done := 0; done < ops; {
		window := pipeline
		if left := ops - done; left < window {
			window = left
		}
		isGet := make([]bool, window)
		idxs := make([]uint64, window)
		for i := 0; i < window; i++ {
			idx := ch.Next()
			idxs[i] = idx
			get := phase == "get" || (phase == "mixed" && rng.Float64() < getRatio)
			isGet[i] = get
			if get {
				wr.WriteCommand([]byte("GET"), workload.Key(idx))
			} else {
				wr.WriteCommand([]byte("SET"), workload.Key(idx), workload.Value(idx, valueSize))
			}
		}
		start := time.Now()
		if err := wr.Flush(); err != nil {
			return err
		}
		for i := 0; i < window; i++ {
			rep, err := rd.ReadReply()
			if err != nil {
				return err
			}
			switch {
			case rep.IsError():
				msg := string(rep.Str)
				switch {
				case strings.HasPrefix(msg, "LOADSHED"):
					res.loadshed.Add(1)
				case strings.HasPrefix(msg, "TIMEOUT"):
					res.timeouts.Add(1)
				case verifier.on && strings.HasPrefix(msg, "CORRUPTION"):
					// The loud answer for damaged data: the server refused
					// to serve rather than guess. Counted, not fatal.
					verifier.corruptions.Add(1)
				default:
					res.errors.Add(1)
				}
			case isGet[i] && rep.Kind == '$' && !rep.Nil:
				res.hits.Add(1)
				if verifier.on {
					verifier.reads.Add(1)
					if !bytes.Equal(rep.Str, workload.Value(idxs[i], valueSize)) {
						verifier.mismatches.Add(1)
					}
				}
			case !isGet[i] && ackedW != nil:
				// The server acked this SET; journal it for post-crash
				// verification. Same-key overwrites are identical by
				// construction (Value is deterministic in the key index).
				k := workload.Key(idxs[i])
				v := workload.Value(idxs[i], valueSize)
				if err := ackedW.Append("set", string(k), string(v)); err != nil {
					return err
				}
			}
		}
		res.rtt.Record(time.Since(start))
		res.ops.Add(int64(window))
		done += window
	}
	return nil
}

// infoFields pulls INFO and returns every numeric "key:value" line.
func infoFields(addr string) (map[string]int64, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	rd := server.NewReader(nc)
	wr := server.NewWriter(nc)
	wr.WriteCommand([]byte("INFO"))
	if err := wr.Flush(); err != nil {
		return nil, err
	}
	rep, err := rd.ReadReply()
	if err != nil {
		return nil, err
	}
	if rep.Kind != '$' {
		return nil, fmt.Errorf("bad INFO reply kind %q", rep.Kind)
	}
	fields := map[string]int64{}
	for _, line := range strings.Split(string(rep.Str), "\r\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			fields[k] = n
		}
	}
	return fields, nil
}

// bgsaveAndWait issues BGSAVE and polls INFO until the background save
// commits (or fails), so the final counter report reflects a finished
// checkpoint.
func bgsaveAndWait(addr string) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netbench: bgsave:", err)
		return
	}
	rd := server.NewReader(nc)
	wr := server.NewWriter(nc)
	wr.WriteCommand([]byte("BGSAVE"))
	if err := wr.Flush(); err != nil {
		nc.Close()
		fmt.Fprintln(os.Stderr, "netbench: bgsave:", err)
		return
	}
	rep, err := rd.ReadReply()
	nc.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netbench: bgsave:", err)
		return
	}
	fmt.Printf("bgsave: %s\n", rep.Str)
	if rep.IsError() {
		return
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		f, err := infoFields(addr)
		if err == nil && f["store_checkpoint_in_progress"] == 0 && f["store_checkpoints"] > 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Fprintln(os.Stderr, "netbench: bgsave did not commit within 15s")
}

// reportServerCounters pulls INFO and prints the batching counters that
// prove pipeline coalescing reached the engine's batch paths.
func reportServerCounters(addr string) {
	fields, err := infoFields(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netbench: info:", err)
		return
	}
	fmt.Printf("server: coalesced_set_ops=%d coalesced_get_ops=%d store_batch_write_ops=%d store_multiget_ops=%d store_batched_ops=%d\n",
		fields["coalesced_set_ops"], fields["coalesced_get_ops"],
		fields["store_batch_write_ops"], fields["store_multiget_ops"], fields["store_batched_ops"])
	fmt.Printf("server: store_compactions=%d store_subcompactions=%d store_concurrent_compactions_hw=%d store_compaction_stall_us=%d store_compaction_slowdown_us=%d store_compaction_slowdowns=%d\n",
		fields["store_compactions"], fields["store_subcompactions"],
		fields["store_concurrent_compactions_hw"], fields["store_compaction_stall_us"],
		fields["store_compaction_slowdown_us"], fields["store_compaction_slowdowns"])
	fmt.Printf("server: store_checkpoints=%d store_checkpoint_barrier_ns=%d store_last_checkpoint_unix=%d store_checkpoint_files_linked=%d store_checkpoint_files_copied=%d store_checkpoint_files_reused=%d store_checkpoint_bytes_copied=%d\n",
		fields["store_checkpoints"], fields["store_checkpoint_barrier_ns"],
		fields["store_last_checkpoint_unix"], fields["store_checkpoint_files_linked"],
		fields["store_checkpoint_files_copied"], fields["store_checkpoint_files_reused"],
		fields["store_checkpoint_bytes_copied"])
	if fields["cache_enabled"] != 0 {
		fmt.Printf("server: cache_hits=%d cache_neg_hits=%d cache_misses=%d cache_fills=%d cache_evictions=%d cache_invalidations=%d cache_bytes=%d cache_entries=%d\n",
			fields["cache_hits"], fields["cache_neg_hits"], fields["cache_misses"],
			fields["cache_fills"], fields["cache_evictions"], fields["cache_invalidations"],
			fields["cache_bytes"], fields["cache_entries"])
	}
}
