package main

// Cluster scaling benchmark (-cluster): boots in-process serving tiers —
// first one primary, then -cluster_nodes primaries each with
// -cluster_replicas read replicas — drives batched GETs through the
// consistent-hash cluster client against both, and reports the aggregate
// throughput ratio plus replica staleness under a sustained write burst.
// The result is emitted as a single BENCH json line for scripted
// consumption. Everything runs in memory inside this process: the
// benchmark exercises the real RESP wire, the real replication stream,
// and the real client batching, with no external setup.
//
// Each node's filesystem is routed through its own simulated device
// (-cluster_device, default sata) and the keyspace is flushed to SSTs
// behind a block cache smaller than the dataset, so per-node GET
// throughput is bound by that node's device service time — the
// SSD-bound regime the paper evaluates. That is what makes N-node
// scaling measurable (and honest) even when the host has fewer cores
// than nodes: adding a node adds a device, exactly as it does in a real
// deployment. -cluster_device none reverts to unthrottled MemFS nodes,
// which only scale when the host has spare cores.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"p2kvs/internal/cluster"
	"p2kvs/internal/core"
	"p2kvs/internal/device"
	"p2kvs/internal/replboot"
	"p2kvs/internal/server"
	"p2kvs/internal/vfs"
	"p2kvs/internal/workload"
)

const clusterBacklog = 64 << 20

// clusterBlockCache keeps the per-instance LSM block cache well under
// the benchmark dataset so uniform GETs miss DRAM and pay device time.
const clusterBlockCache = 256 << 10

// simTracker mints per-node devices and aggregates their counters, so
// the benchmark can report device reads per GET — the number that shows
// whether a phase was actually IO-bound.
type simTracker struct {
	mu      sync.Mutex
	devices []*device.Device
}

func (t *simTracker) readOps() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, d := range t.devices {
		n += d.Stats().ReadOps
	}
	return n
}

// simFor resolves the -cluster_device flag to a per-node Sim factory.
// Each call mints a fresh device: every node owns its own simulated SSD.
func simFor(name string, scale float64) (func() replboot.Sim, *simTracker, error) {
	if name == "" || name == "none" {
		return func() replboot.Sim { return replboot.Sim{} }, nil, nil
	}
	var prof device.Profile
	switch name {
	case "nvme":
		prof = device.NVMe
	case "sata":
		prof = device.SATA
	case "hdd":
		prof = device.HDD
	default:
		return nil, nil, fmt.Errorf("unknown device profile %q (nvme, sata, hdd, none)", name)
	}
	tr := &simTracker{}
	return func() replboot.Sim {
		dev := device.New(prof, scale)
		tr.mu.Lock()
		tr.devices = append(tr.devices, dev)
		tr.mu.Unlock()
		return replboot.Sim{Device: dev, BlockCache: clusterBlockCache}
	}, tr, nil
}

// bootNode starts one in-process replication-enabled node on its own
// simulated device and returns its address, the store handle (valid
// until the node full-syncs, which replaces it — primaries keep theirs),
// and a shutdown func.
func bootNode(workers int, replicaOf string, sim replboot.Sim) (string, *core.Store, func(), error) {
	st, err := replboot.MemStoreSim(workers, clusterBacklog, sim)
	if err != nil {
		return "", nil, nil, err
	}
	srv := server.New(server.Config{
		Store:        st,
		ReplDir:      "repl",
		ReplFS:       vfs.NewMem(),
		RestoreStore: replboot.MemRestoreSim(clusterBacklog, sim),
		ReplicaOf:    replicaOf,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	done := make(chan struct{})
	go func() {
		srv.Serve(lis)
		close(done)
	}()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}
	return lis.Addr().String(), st, shutdown, nil
}

// bootTier starts n primaries with replicasPer replicas each and
// returns the primaries' store handles alongside the routing table.
func bootTier(n, replicasPer, workers int, newSim func() replboot.Sim) ([]cluster.Node, []*core.Store, func(), error) {
	var nodes []cluster.Node
	var primaries []*core.Store
	var shutdowns []func()
	teardown := func() {
		for i := len(shutdowns) - 1; i >= 0; i-- {
			shutdowns[i]()
		}
	}
	for i := 0; i < n; i++ {
		addr, st, stop, err := bootNode(workers, "", newSim())
		if err != nil {
			teardown()
			return nil, nil, nil, err
		}
		shutdowns = append(shutdowns, stop)
		primaries = append(primaries, st)
		node := cluster.Node{Addr: addr}
		for r := 0; r < replicasPer; r++ {
			raddr, _, rstop, err := bootNode(workers, addr, newSim())
			if err != nil {
				teardown()
				return nil, nil, nil, err
			}
			shutdowns = append(shutdowns, rstop)
			node.Replicas = append(node.Replicas, raddr)
		}
		nodes = append(nodes, node)
	}
	return nodes, primaries, teardown, nil
}

// flushTier pushes every primary's memtables to SSTs and compacts each
// instance, so the measured GETs read from the device rather than the
// write buffer and both tiers see the same settled read amplification
// (otherwise the bigger 1-node dataset carries more L0 files per lookup
// and the comparison flatters the cluster).
func flushTier(primaries []*core.Store) error {
	for _, st := range primaries {
		if err := st.Flush(); err != nil {
			return err
		}
		for i := 0; i < st.Workers(); i++ {
			if c, ok := st.Engine(i).(interface{ CompactAll() error }); ok {
				if err := c.CompactAll(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// loadKeys MSets the whole keyspace through the cluster client.
func loadKeys(nodes []cluster.Node, nkeys, valueSize, batch int) error {
	cl, err := cluster.New(nodes, cluster.Options{MaxBatch: batch})
	if err != nil {
		return err
	}
	defer cl.Close()
	keys := make([][]byte, 0, batch)
	vals := make([][]byte, 0, batch)
	for i := 0; i < nkeys; i += batch {
		keys, vals = keys[:0], vals[:0]
		for j := i; j < i+batch && j < nkeys; j++ {
			keys = append(keys, workload.Key(uint64(j)))
			vals = append(vals, workload.Value(uint64(j), valueSize))
		}
		if err := cl.MSet(keys, vals); err != nil {
			return err
		}
	}
	return nil
}

// measureGets drives conns independent cluster clients (each with its
// own connection pool) through uniform batched MGETs for dur and
// returns aggregate keys/sec. Every batch is checked for emptiness —
// a miss means the load phase lied.
func measureGets(nodes []cluster.Node, nkeys, batch, conns int, replicaReads bool, dur time.Duration) (float64, int64, error) {
	var total atomic.Int64
	var misses atomic.Int64
	errCh := make(chan error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(dur)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := cluster.New(nodes, cluster.Options{MaxBatch: batch, ReadFromReplicas: replicaReads})
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(seed))
			buf := make([][]byte, batch)
			for time.Now().Before(stop) {
				for i := range buf {
					buf[i] = workload.Key(uint64(rng.Intn(nkeys)))
				}
				got, err := cl.MGet(buf)
				if err != nil {
					errCh <- err
					return
				}
				for _, v := range got {
					if v == nil {
						misses.Add(1)
					}
				}
				total.Add(int64(len(buf)))
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	if m := misses.Load(); m > 0 && !replicaReads {
		return 0, 0, fmt.Errorf("%d GET misses on a fully loaded keyspace", m)
	}
	return float64(total.Load()) / elapsed.Seconds(), total.Load(), nil
}

// measureStaleness hammers writes through the primaries for dur while
// sampling each replica's INFO lag, then reports the worst lag observed
// mid-burst and how long the tier took to fully converge afterwards.
func measureStaleness(nodes []cluster.Node, nkeys, valueSize, batch int, dur time.Duration) (maxLag int64, convergeMs int64, err error) {
	cl, err := cluster.New(nodes, cluster.Options{MaxBatch: batch})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	var replicas []string
	for _, n := range nodes {
		replicas = append(replicas, n.Replicas...)
	}
	stop := time.Now().Add(dur)
	keys := make([][]byte, batch)
	vals := make([][]byte, batch)
	i := 0
	for time.Now().Before(stop) {
		for j := range keys {
			keys[j] = workload.Key(uint64(i % nkeys))
			vals[j] = workload.Value(uint64(i%nkeys), valueSize)
			i++
		}
		if err := cl.MSet(keys, vals); err != nil {
			return 0, 0, err
		}
		for _, r := range replicas {
			if f, err := infoFields(r); err == nil && f["replica_lag_gsn"] > maxLag {
				maxLag = f["replica_lag_gsn"]
			}
		}
	}
	convergeStart := time.Now()
	deadline := convergeStart.Add(10 * time.Second)
	for _, r := range replicas {
		for {
			f, err := infoFields(r)
			if err == nil && f["replica_lag_gsn"] == 0 {
				break
			}
			if time.Now().After(deadline) {
				return maxLag, 0, fmt.Errorf("replica %s did not converge within 10s", r)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return maxLag, time.Since(convergeStart).Milliseconds(), nil
}

// readsPerGet guards the division when the device is disabled or a
// phase measured nothing.
func readsPerGet(reads, keys int64) float64 {
	if keys == 0 {
		return 0
	}
	return float64(reads) / float64(keys)
}

// clusterBenchResult is the BENCH json schema for the -cluster mode.
type clusterBenchResult struct {
	Benchmark       string  `json:"benchmark"`
	Nodes           int     `json:"nodes"`
	ReplicasPerNode int     `json:"replicas_per_node"`
	WorkersPerNode  int     `json:"workers_per_node"`
	Keys            int     `json:"keys"`
	ValueSize       int     `json:"value_size"`
	Batch           int     `json:"batch"`
	Conns           int     `json:"conns"`
	Device          string  `json:"device"`
	DeviceScale     float64 `json:"device_scale"`
	ReadsPerGet1    float64 `json:"device_reads_per_get_1node"`
	ReadsPerGetN    float64 `json:"device_reads_per_get_nnode"`
	GetOps1Node     float64 `json:"get_ops_1node"`
	GetOpsNNode     float64 `json:"get_ops_nnode"`
	Scaling         float64 `json:"scaling"`
	ReplicaGetOps   float64 `json:"replica_fanout_get_ops"`
	MaxLagGSN       int64   `json:"replica_lag_gsn_max"`
	ConvergeMs      int64   `json:"replica_converge_ms"`
}

func runClusterBench(nNodes, replicasPer, workers, nkeys, valueSize, batch, conns int, secs time.Duration, devName string, devScale float64) {
	fail := func(stage string, err error) {
		fmt.Fprintf(os.Stderr, "netbench: cluster %s: %v\n", stage, err)
		os.Exit(1)
	}
	if batch > cluster.MaxBatch {
		batch = cluster.MaxBatch
	}
	newSim, tracker, err := simFor(devName, devScale)
	if err != nil {
		fail("device", err)
	}
	fmt.Printf("netbench cluster: nodes=%d replicas/node=%d workers/node=%d keys=%d value=%dB batch=%d conns=%d device=%s scale=%g\n",
		nNodes, replicasPer, workers, nkeys, valueSize, batch, conns, devName, devScale)

	// Baseline: one primary serving the whole keyspace.
	oneNode, onePrim, stopOne, err := bootTier(1, 0, workers, newSim)
	if err != nil {
		fail("boot 1-node", err)
	}
	if err := loadKeys(oneNode, nkeys, valueSize, batch); err != nil {
		stopOne()
		fail("load 1-node", err)
	}
	if err := flushTier(onePrim); err != nil {
		stopOne()
		fail("flush 1-node", err)
	}
	reads0 := tracker.readOps()
	ops1, keys1, err := measureGets(oneNode, nkeys, batch, conns, false, secs)
	rpg1 := readsPerGet(tracker.readOps()-reads0, keys1)
	stopOne()
	if err != nil {
		fail("measure 1-node", err)
	}
	fmt.Printf("1-node  GET : %12.0f keys/sec (%.2f device reads/GET)\n", ops1, rpg1)

	// The tier under test: nNodes primaries, each with its replicas.
	nodes, primaries, stopTier, err := bootTier(nNodes, replicasPer, workers, newSim)
	if err != nil {
		fail("boot tier", err)
	}
	defer stopTier()
	if err := loadKeys(nodes, nkeys, valueSize, batch); err != nil {
		fail("load tier", err)
	}
	if err := flushTier(primaries); err != nil {
		fail("flush tier", err)
	}
	readsN0 := tracker.readOps()
	opsN, keysN, err := measureGets(nodes, nkeys, batch, conns, false, secs)
	if err != nil {
		fail("measure tier", err)
	}
	rpgN := readsPerGet(tracker.readOps()-readsN0, keysN)
	fmt.Printf("%d-node  GET : %12.0f keys/sec (%.2fx, %.2f device reads/GET)\n", nNodes, opsN, opsN/ops1, rpgN)

	var opsR float64
	var maxLag, convergeMs int64
	if replicasPer > 0 {
		// Replica fanout needs the replicas caught up, or misses would
		// count as staleness rather than routing.
		if _, _, err := measureStaleness(nodes, nkeys, valueSize, batch, 0); err != nil {
			fail("replica warmup", err)
		}
		opsR, _, err = measureGets(nodes, nkeys, batch, conns, true, secs)
		if err != nil {
			fail("measure replica fanout", err)
		}
		fmt.Printf("fanout  GET : %12.0f keys/sec (primaries+replicas)\n", opsR)
		maxLag, convergeMs, err = measureStaleness(nodes, nkeys, valueSize, batch, secs)
		if err != nil {
			fail("staleness", err)
		}
		fmt.Printf("staleness   : max replica_lag_gsn=%d under write burst; converged in %dms\n", maxLag, convergeMs)
	}

	res := clusterBenchResult{
		Benchmark:       "cluster_get_scaling",
		Nodes:           nNodes,
		ReplicasPerNode: replicasPer,
		WorkersPerNode:  workers,
		Keys:            nkeys,
		ValueSize:       valueSize,
		Batch:           batch,
		Conns:           conns,
		Device:          devName,
		DeviceScale:     devScale,
		ReadsPerGet1:    rpg1,
		ReadsPerGetN:    rpgN,
		GetOps1Node:     ops1,
		GetOpsNNode:     opsN,
		Scaling:         opsN / ops1,
		ReplicaGetOps:   opsR,
		MaxLagGSN:       maxLag,
		ConvergeMs:      convergeMs,
	}
	out, _ := json.Marshal(res)
	fmt.Printf("BENCH %s\n", out)
}
