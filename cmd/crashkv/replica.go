package main

// Replication torture (-replica): a primary/replica pair of real
// p2kvs-server processes under the same SIGKILL regime as the
// single-node harness. Load (pipelined SETs plus cross-partition MSETs
// and BGSAVEs) runs against the primary while the replica tails the GSN
// stream; each cycle a victim — replica, primary, or both — is killed
// mid-stream and restarted, and the harness verifies over the wire that
//
//   - the primary still honors the durability contract (same checks as
//     the single-node mode: no acked write lost under -mode commit);
//   - the replica reconnects, resyncs and converges: the two SCAN/MGET
//     dumps are byte-identical once replica_lag_gsn reaches 0;
//   - a replica killed while the primary survives resumes with a
//     partial resync (its fresh-process INFO counters show
//     replica_partial_syncs >= 1 and replica_full_syncs == 0);
//   - after the cycles, a replica held down until the primary's backlog
//     provably trimmed past every record it had seen falls back to a
//     full sync and still converges to an identical dump.

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"p2kvs/internal/server"
)

var (
	replicaMode = flag.Bool("replica", false, "replication torture: primary+replica pair, kill either mid-stream, verify convergence and sync kinds")
	replBacklog = flag.Int64("repl_backlog_bytes", 4<<20, "primary replication backlog retention for -replica mode")
)

// node is one server process of the pair, restartable on a fixed port.
type node struct {
	name string
	addr string
	dir  string
	args []string
	logs *os.File
	cmd  *exec.Cmd
}

func newNode(name, addr, dir string, extra ...string) *node {
	logs, err := os.Create(dir + ".log")
	if err != nil {
		fatalf("%s log: %v", name, err)
	}
	args := []string{
		"-addr", addr,
		"-dir", dir,
		"-engine", *engine,
		"-workers", fmt.Sprint(*workers),
		"-repl_backlog", fmt.Sprint(*replBacklog),
		"-repl_dir", dir + "-repl",
		"-conn_idle_timeout", "30s",
	}
	switch *mode {
	case "commit":
		args = append(args, "-wal_sync", "commit")
	case "interval":
		args = append(args, "-wal_sync", "25ms")
	case "never":
		args = append(args, "-wal_sync", "never")
	}
	args = append(args, extra...)
	return &node{name: name, addr: addr, dir: dir, args: args, logs: logs}
}

func (n *node) start() {
	cmd := exec.Command(*serverBin, n.args...)
	cmd.Stdout = n.logs
	cmd.Stderr = n.logs
	if err := cmd.Start(); err != nil {
		fatalf("start %s: %v", n.name, err)
	}
	n.cmd = cmd
}

func (n *node) kill() {
	if n.cmd == nil {
		return
	}
	n.cmd.Process.Kill()
	n.cmd.Wait()
	n.cmd = nil
}

func (n *node) awaitReady() {
	if err := awaitPing(n.addr, 30*time.Second); err != nil {
		fatalf("%s never became ready: %v", n.name, err)
	}
}

func awaitPing(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		nc, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			rd, wr := server.NewReader(nc), server.NewWriter(nc)
			wr.WriteCommand([]byte("PING"))
			if wr.Flush() == nil {
				if rep, err := rd.ReadReply(); err == nil && !rep.IsError() {
					nc.Close()
					return nil
				}
			}
			nc.Close()
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("timeout after %v", timeout)
}

// infoMap fetches INFO and parses the k:v lines.
func infoMap(addr string) (map[string]string, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	rd, wr := server.NewReader(nc), server.NewWriter(nc)
	wr.WriteCommand([]byte("INFO"))
	if err := wr.Flush(); err != nil {
		return nil, err
	}
	rep, err := rd.ReadReply()
	if err != nil {
		return nil, err
	}
	if rep.IsError() {
		return nil, fmt.Errorf("INFO: %s", rep.Str)
	}
	m := make(map[string]string)
	for _, line := range strings.Split(string(rep.Str), "\r\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && !strings.HasPrefix(k, "#") {
			m[k] = v
		}
	}
	return m, nil
}

func infoInt(m map[string]string, key string) int64 {
	n, _ := strconv.ParseInt(m[key], 10, 64)
	return n
}

// awaitSync waits until the replica's link is up and it has fully
// drained the primary's stream.
func awaitSync(replicaAddr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last map[string]string
	for time.Now().Before(deadline) {
		m, err := infoMap(replicaAddr)
		if err == nil && m["role"] == "replica" &&
			m["master_link_status"] == "up" && m["replica_lag_gsn"] == "0" {
			return nil
		}
		last = m
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("replica did not converge within %v (status=%s lag=%s err=%q)",
		timeout, last["master_link_status"], last["replica_lag_gsn"], last["master_link_last_error"])
}

// dumpKeys walks the whole keyspace with SCAN, returning the ordered
// key list.
func dumpKeys(rd *server.Reader, wr *server.Writer) ([][]byte, error) {
	var keys [][]byte
	cursor := []byte("0")
	for {
		wr.WriteCommand([]byte("SCAN"), cursor, []byte("COUNT"), []byte("1000"))
		if err := wr.Flush(); err != nil {
			return nil, err
		}
		rep, err := rd.ReadReply()
		if err != nil {
			return nil, err
		}
		if rep.IsError() || len(rep.Elems) != 2 {
			return nil, fmt.Errorf("SCAN: %s", rep.String())
		}
		for _, e := range rep.Elems[1].Elems {
			keys = append(keys, e.Str)
		}
		cursor = rep.Elems[0].Str
		if string(cursor) == "0" {
			return keys, nil
		}
	}
}

// compareDumps requires the two servers to hold byte-identical ordered
// datasets: same SCAN key sequence, same MGET values. Returns the key
// count.
func compareDumps(primaryAddr, replicaAddr string) (int, error) {
	pc, err := net.DialTimeout("tcp", primaryAddr, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer pc.Close()
	rc, err := net.DialTimeout("tcp", replicaAddr, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	prd, pwr := server.NewReader(pc), server.NewWriter(pc)
	rrd, rwr := server.NewReader(rc), server.NewWriter(rc)

	pk, err := dumpKeys(prd, pwr)
	if err != nil {
		return 0, fmt.Errorf("primary scan: %v", err)
	}
	rk, err := dumpKeys(rrd, rwr)
	if err != nil {
		return 0, fmt.Errorf("replica scan: %v", err)
	}
	if len(pk) != len(rk) {
		have := make(map[string]bool, len(rk))
		for _, k := range rk {
			have[string(k)] = true
		}
		var missing []string
		for _, k := range pk {
			if !have[string(k)] && len(missing) < 8 {
				missing = append(missing, string(k))
			}
		}
		return 0, fmt.Errorf("DIVERGED: primary holds %d keys, replica %d (e.g. missing %v)", len(pk), len(rk), missing)
	}
	for i := range pk {
		if !bytes.Equal(pk[i], rk[i]) {
			return 0, fmt.Errorf("DIVERGED: key %d is %q on primary, %q on replica", i, pk[i], rk[i])
		}
	}
	const chunk = 500
	for off := 0; off < len(pk); off += chunk {
		end := off + chunk
		if end > len(pk) {
			end = len(pk)
		}
		cmd := make([][]byte, 0, end-off+1)
		cmd = append(cmd, []byte("MGET"))
		cmd = append(cmd, pk[off:end]...)
		pwr.WriteCommand(cmd...)
		rwr.WriteCommand(cmd...)
		if err := pwr.Flush(); err != nil {
			return 0, err
		}
		if err := rwr.Flush(); err != nil {
			return 0, err
		}
		prep, err := prd.ReadReply()
		if err != nil {
			return 0, err
		}
		rrep, err := rrd.ReadReply()
		if err != nil {
			return 0, err
		}
		if prep.IsError() || rrep.IsError() {
			return 0, fmt.Errorf("MGET: primary %s, replica %s", prep.String(), rrep.String())
		}
		for i := range prep.Elems {
			pv, rv := prep.Elems[i], rrep.Elems[i]
			if pv.Nil != rv.Nil || !bytes.Equal(pv.Str, rv.Str) {
				return 0, fmt.Errorf("DIVERGED: %q is %q on primary, %q on replica",
					pk[off+i], pv.String(), rv.String())
			}
		}
	}
	return len(pk), nil
}

// msetConn drives cross-partition MSETs against the primary so the
// multi-shard transaction path (begin/legs/commit plus the checkpoint
// cursor-lowering it forces) stays hot while kills land. Values carry a
// self-describing pattern; divergence is caught by compareDumps.
func msetConn(addr string, stop chan struct{}, counter *int64) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return
	}
	defer nc.Close()
	rd, wr := server.NewReader(nc), server.NewWriter(nc)
	rng := rand.New(rand.NewSource(*seed + 7919))
	seqNo := int64(0)
	for {
		select {
		case <-stop:
			return
		default:
		}
		seqNo++
		cmd := [][]byte{[]byte("MSET")}
		for j := 0; j < 8; j++ {
			k := fmt.Sprintf("mx-%03d", rng.Intn(64))
			cmd = append(cmd, []byte(k), []byte(fmt.Sprintf("m%08d|%s", seqNo, k)))
		}
		wr.WriteCommand(cmd...)
		if wr.Flush() != nil {
			return
		}
		if rep, err := rd.ReadReply(); err != nil {
			return
		} else if !rep.IsError() {
			*counter++
		}
	}
}

// overflowBacklog writes large values to the primary until every record
// that was in its backlog at the start has been trimmed away — at that
// point a cursor from before the overflow is provably outside the
// retention window and only a full sync can serve it.
func overflowBacklog(addr string) error {
	m, err := infoMap(addr)
	if err != nil {
		return err
	}
	target := infoInt(m, "repl_backlog_trimmed") + infoInt(m, "repl_backlog_records") + 1
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	rd, wr := server.NewReader(nc), server.NewWriter(nc)
	val := bytes.Repeat([]byte("y"), 4096)
	for i := 0; ; i++ {
		for j := 0; j < 64; j++ {
			k := fmt.Sprintf("ov-%05d", (i*64+j)%4096)
			wr.WriteCommand([]byte("SET"), []byte(k), val)
		}
		if err := wr.Flush(); err != nil {
			return err
		}
		for j := 0; j < 64; j++ {
			if _, err := rd.ReadReply(); err != nil {
				return err
			}
		}
		m, err := infoMap(addr)
		if err != nil {
			return err
		}
		if infoInt(m, "repl_backlog_trimmed") >= target {
			return nil
		}
		if i > 4096 {
			return fmt.Errorf("backlog never trimmed past %d records", target)
		}
	}
}

// runReplica is the -replica entry point. h carries the per-key acked
// state and journal; h.addr is pointed at the primary so the standard
// verify/load paths apply unchanged.
func runReplica(h *harness) {
	pickAddr := func() string {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("pick port: %v", err)
		}
		defer lis.Close()
		return lis.Addr().String()
	}
	pAddr, rAddr := pickAddr(), pickAddr()
	h.addr = pAddr
	primary := newNode("primary", pAddr, *dir+"/primary", "-checkpoint_dir", *dir+"/backup")
	replica := newNode("replica", rAddr, *dir+"/replica", "-replicaof", pAddr)
	defer primary.kill()
	defer replica.kill()

	fmt.Printf("crashkv: replica mode=%s engine=%s cycles=%d backlog=%d seed=%d dir=%s primary=%s replica=%s\n",
		*mode, *engine, *cycles, *replBacklog, *seed, *dir, pAddr, rAddr)

	primary.start()
	primary.awaitReady()
	replica.start()
	replica.awaitReady()

	var msets int64
	partialResyncs, fullResyncs := 0, 0
	for cycle := 0; cycle < *cycles; cycle++ {
		if err := h.verify(); err != nil {
			fatalf("cycle %d: PRIMARY VERIFICATION FAILED: %v", cycle, err)
		}
		if err := awaitSync(rAddr, 60*time.Second); err != nil {
			fatalf("cycle %d: %v", cycle, err)
		}
		n, err := compareDumps(pAddr, rAddr)
		if err != nil {
			fatalf("cycle %d: %v", cycle, err)
		}
		if *verbose {
			fmt.Printf("crashkv: cycle %d: converged, %d keys identical\n", cycle, n)
		}

		// Load against the primary, then kill the cycle's victim
		// mid-stream. Victims rotate so every cut point is exercised.
		stop := make(chan struct{})
		done := make(chan struct{}, *conns+2)
		for c := 0; c < *conns; c++ {
			go func(c int) {
				defer func() { done <- struct{}{} }()
				h.loadConn(c, stop)
			}(c)
		}
		go func() {
			defer func() { done <- struct{}{} }()
			h.bgsaveConn(stop)
		}()
		go func() {
			defer func() { done <- struct{}{} }()
			msetConn(pAddr, stop, &msets)
		}()
		live := 150*time.Millisecond + time.Duration(h.rng.Int63n(int64(450*time.Millisecond)))
		time.Sleep(live)
		victim := cycle % 3
		if victim == 0 || victim == 2 {
			replica.kill()
		}
		if victim == 1 || victim == 2 {
			primary.kill()
		}
		h.kills++
		close(stop)
		for i := 0; i < *conns+2; i++ {
			<-done
		}

		if primary.cmd == nil {
			primary.start()
			primary.awaitReady()
		}
		if replica.cmd == nil {
			replica.start()
			replica.awaitReady()
		}
		// A replica killed under a live primary must come back with a
		// partial resync: its cursors are inside the backlog the
		// surviving primary kept. The counters are process-local, so on
		// the freshly restarted replica they isolate this reconnect.
		if victim == 0 {
			if err := awaitSync(rAddr, 60*time.Second); err != nil {
				fatalf("cycle %d: after replica kill: %v", cycle, err)
			}
			m, err := infoMap(rAddr)
			if err != nil {
				fatalf("cycle %d: %v", cycle, err)
			}
			p, f := infoInt(m, "replica_partial_syncs"), infoInt(m, "replica_full_syncs")
			partialResyncs += int(p)
			fullResyncs += int(f)
			if p == 0 {
				fatalf("cycle %d: replica restarted under a live primary but did not partial-resync (partial=%d full=%d)", cycle, p, f)
			}
		}
	}

	// Final convergence after the last kill cycle.
	if err := h.verify(); err != nil {
		fatalf("final: PRIMARY VERIFICATION FAILED: %v", err)
	}
	if err := awaitSync(rAddr, 60*time.Second); err != nil {
		fatalf("final: %v", err)
	}
	if _, err := compareDumps(pAddr, rAddr); err != nil {
		fatalf("final: %v", err)
	}

	// Out-of-window: hold the replica down until the primary's backlog
	// has trimmed past everything the replica ever saw, then prove the
	// reconnect falls back to a full sync and still converges.
	replica.kill()
	if err := overflowBacklog(pAddr); err != nil {
		fatalf("overflow: %v", err)
	}
	replica.start()
	replica.awaitReady()
	if err := awaitSync(rAddr, 120*time.Second); err != nil {
		fatalf("out-of-window: %v", err)
	}
	m, err := infoMap(rAddr)
	if err != nil {
		fatalf("out-of-window: %v", err)
	}
	if infoInt(m, "replica_full_syncs") < 1 {
		fatalf("out-of-window: replica reconnected without a full sync (partial=%d full=%d)",
			infoInt(m, "replica_partial_syncs"), infoInt(m, "replica_full_syncs"))
	}
	keys, err := compareDumps(pAddr, rAddr)
	if err != nil {
		fatalf("out-of-window: %v", err)
	}

	// Graceful shutdown of both.
	for _, n := range []*node{replica, primary} {
		n.cmd.Process.Signal(os.Interrupt)
		if err := n.cmd.Wait(); err != nil {
			fatalf("%s: graceful shutdown failed: %v", n.name, err)
		}
		n.cmd = nil
	}
	fmt.Printf("crashkv: PASS (replica) — %d kills, %d acked sets, %d msets, %d partial resyncs, full-sync fallback verified, %d keys identical\n",
		h.kills, h.setsAcked.Load(), msets, partialResyncs, keys)
}
