// Command crashkv is the crash-recovery torture harness: it spawns a
// real p2kvs-server process, drives pipelined SET load while journaling
// every acknowledged write, SIGKILLs the server at a random moment
// (including mid-BGSAVE), restarts it, and verifies over the wire that
// the durability contract held:
//
//   - under -mode commit (SyncOnCommit), every acknowledged write is
//     present after the kill: for each key the stored sequence number is
//     in [highest acked, highest attempted];
//   - under -mode interval / never, acked writes may be lost but the
//     store must restart cleanly and every surviving value must be
//     well-formed (no torn or cross-key bytes served).
//
// The cycle repeats -cycles times; any violation exits non-zero.
//
// With -replica the harness instead runs a primary/replica pair and
// rotates the SIGKILL victim (replica, primary, both) while the replica
// tails the primary's GSN stream; see replica.go for the contract.
//
// Example:
//
//	go build -o bin/p2kvs-server ./cmd/p2kvs-server
//	go run ./cmd/crashkv -server bin/p2kvs-server -cycles 25 -mode commit
//	go run ./cmd/crashkv -server bin/p2kvs-server -cycles 9 -replica
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"time"

	"p2kvs/internal/ackedlog"
	"p2kvs/internal/server"
)

var (
	serverBin = flag.String("server", "bin/p2kvs-server", "path to the p2kvs-server binary")
	dir       = flag.String("dir", "", "data directory (default: a fresh temp dir)")
	cycles    = flag.Int("cycles", 25, "kill/restart cycles")
	mode      = flag.String("mode", "commit", "durability mode: commit, interval, never")
	engine    = flag.String("engine", "rocksdb", "server engine")
	workers   = flag.Int("workers", 4, "server worker count")
	conns     = flag.Int("conns", 4, "load connections")
	pipeline  = flag.Int("pipeline", 8, "pipelined SETs per window")
	keysPer   = flag.Int("keys_per_conn", 200, "key range owned by each connection")
	valueSize = flag.Int("value_size", 128, "value size in bytes")
	seed      = flag.Int64("seed", 0, "RNG seed (0 = time-based)")
	ackedPath = flag.String("acked_log", "", "journal acked writes here (default <dir>/acked.log)")
	verbose   = flag.Bool("v", false, "log every cycle's detail")
)

// keyState tracks one key's write progress. Keys are partitioned by
// connection, so each is touched by exactly one goroutine during load;
// the driver reads the state only after the load goroutines stop.
type keyState struct {
	attempted int64 // highest seq ever sent in a SET
	acked     int64 // highest seq the server acked
}

type harness struct {
	rng    *rand.Rand
	addr   string
	states [][]keyState // [conn][key]
	acked  *ackedlog.Writer
	// totals for the final report (atomics: load connections update them
	// concurrently)
	setsAcked  atomic.Int64
	bgsaves    atomic.Int64
	kills      int
	verifyOps  int64
	serverLogs *os.File
}

func key(conn, i int) string { return fmt.Sprintf("c%02d-k%05d", conn, i) }

func value(conn, i int, seq int64) string {
	head := fmt.Sprintf("s%08d|%s|", seq, key(conn, i))
	if pad := *valueSize - len(head); pad > 0 {
		head += strings.Repeat("x", pad)
	}
	return head
}

// parseValue validates a stored value's structure and extracts its seq.
func parseValue(conn, i int, v string) (int64, error) {
	var seq int64
	var k string
	head, _, ok := strings.Cut(v, "|")
	if !ok {
		return 0, fmt.Errorf("no seq delimiter in %q", truncate(v))
	}
	if _, err := fmt.Sscanf(head, "s%d", &seq); err != nil {
		return 0, fmt.Errorf("bad seq header in %q", truncate(v))
	}
	rest := v[len(head)+1:]
	k, _, ok = strings.Cut(rest, "|")
	if !ok || k != key(conn, i) {
		return 0, fmt.Errorf("key echo mismatch in %q (want %s)", truncate(v), key(conn, i))
	}
	if want := value(conn, i, seq); v != want {
		return 0, fmt.Errorf("padding corrupted in %q", truncate(v))
	}
	return seq, nil
}

func truncate(s string) string {
	if len(s) > 48 {
		return s[:48] + "..."
	}
	return s
}

func main() {
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	switch *mode {
	case "commit", "interval", "never":
	default:
		fatalf("unknown -mode %q", *mode)
	}
	if *dir == "" {
		d, err := os.MkdirTemp("", "crashkv-*")
		if err != nil {
			fatalf("mkdtemp: %v", err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}
	if *ackedPath == "" {
		*ackedPath = *dir + "/acked.log"
	}

	h := &harness{rng: rand.New(rand.NewSource(*seed))}
	h.states = make([][]keyState, *conns)
	for c := range h.states {
		h.states[c] = make([]keyState, *keysPer)
	}
	var err error
	if h.acked, err = ackedlog.Create(*ackedPath); err != nil {
		fatalf("acked log: %v", err)
	}
	defer h.acked.Close()
	if *replicaMode {
		runReplica(h)
		return
	}
	if h.serverLogs, err = os.Create(*dir + "/server.log"); err != nil {
		fatalf("server log: %v", err)
	}
	defer h.serverLogs.Close()

	// One port for the whole run, grabbed from the kernel then released.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("pick port: %v", err)
	}
	h.addr = lis.Addr().String()
	lis.Close()

	fmt.Printf("crashkv: mode=%s engine=%s cycles=%d conns=%d pipeline=%d seed=%d dir=%s addr=%s\n",
		*mode, *engine, *cycles, *conns, *pipeline, *seed, *dir, h.addr)

	for cycle := 0; cycle < *cycles; cycle++ {
		cmd := h.startServer()
		if err := h.awaitReady(); err != nil {
			cmd.Process.Kill()
			fatalf("cycle %d: server never became ready: %v", cycle, err)
		}
		// The restarted server must still hold everything the previous
		// incarnations acked.
		if err := h.verify(); err != nil {
			cmd.Process.Kill()
			fatalf("cycle %d: VERIFICATION FAILED: %v", cycle, err)
		}
		h.runLoadAndKill(cmd, cycle)
	}

	// Final incarnation: verify, prove the store still accepts writes,
	// then shut down gracefully.
	cmd := h.startServer()
	if err := h.awaitReady(); err != nil {
		cmd.Process.Kill()
		fatalf("final: server never became ready: %v", err)
	}
	if err := h.verify(); err != nil {
		cmd.Process.Kill()
		fatalf("final: VERIFICATION FAILED: %v", err)
	}
	if err := h.probeWrite(); err != nil {
		cmd.Process.Kill()
		fatalf("final: store rejected writes after recovery: %v", err)
	}
	cmd.Process.Signal(os.Interrupt)
	if err := cmd.Wait(); err != nil {
		fatalf("final: graceful shutdown failed: %v", err)
	}
	fmt.Printf("crashkv: PASS — %d kills, %d acked sets verified across restarts, %d verification reads, %d bgsaves\n",
		h.kills, h.setsAcked.Load(), h.verifyOps, h.bgsaves.Load())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crashkv: "+format+"\n", args...)
	os.Exit(1)
}

// startServer spawns a fresh p2kvs-server on the harness address.
func (h *harness) startServer() *exec.Cmd {
	args := []string{
		"-addr", h.addr,
		"-dir", *dir + "/db",
		"-engine", *engine,
		"-workers", fmt.Sprint(*workers),
		"-checkpoint_dir", *dir + "/backup",
		"-conn_idle_timeout", "30s",
	}
	switch *mode {
	case "commit":
		args = append(args, "-wal_sync", "commit")
	case "interval":
		args = append(args, "-wal_sync", "25ms")
	case "never":
		args = append(args, "-wal_sync", "never")
	}
	cmd := exec.Command(*serverBin, args...)
	cmd.Stdout = h.serverLogs
	cmd.Stderr = h.serverLogs
	if err := cmd.Start(); err != nil {
		fatalf("start server: %v", err)
	}
	return cmd
}

func (h *harness) awaitReady() error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		nc, err := net.DialTimeout("tcp", h.addr, time.Second)
		if err == nil {
			rd, wr := server.NewReader(nc), server.NewWriter(nc)
			wr.WriteCommand([]byte("PING"))
			if wr.Flush() == nil {
				if rep, err := rd.ReadReply(); err == nil && !rep.IsError() {
					nc.Close()
					return nil
				}
			}
			nc.Close()
		}
		time.Sleep(20 * time.Millisecond)
	}
	return errors.New("timeout")
}

// verify walks every key ever acked and checks the restarted server's
// state against the journal.
func (h *harness) verify() error {
	nc, err := net.DialTimeout("tcp", h.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	rd, wr := server.NewReader(nc), server.NewWriter(nc)
	for c := range h.states {
		for i := range h.states[c] {
			st := &h.states[c][i]
			if st.attempted == 0 {
				continue
			}
			wr.WriteCommand([]byte("GET"), []byte(key(c, i)))
			if err := wr.Flush(); err != nil {
				return err
			}
			rep, err := rd.ReadReply()
			if err != nil {
				return err
			}
			h.verifyOps++
			if rep.IsError() {
				return fmt.Errorf("GET %s: server error %q", key(c, i), rep.Str)
			}
			if rep.Nil {
				if *mode == "commit" && st.acked > 0 {
					return fmt.Errorf("ACKED WRITE LOST: %s acked seq %d but key is gone", key(c, i), st.acked)
				}
				continue
			}
			seq, perr := parseValue(c, i, string(rep.Str))
			if perr != nil {
				return fmt.Errorf("CORRUPT VALUE for %s: %v", key(c, i), perr)
			}
			if seq > st.attempted {
				return fmt.Errorf("IMPOSSIBLE SEQ for %s: stored %d > highest attempted %d", key(c, i), seq, st.attempted)
			}
			if *mode == "commit" && seq < st.acked {
				return fmt.Errorf("ACKED WRITE LOST: %s stored seq %d < acked seq %d", key(c, i), seq, st.acked)
			}
			// Recovery must not resurrect state older than the previous
			// verification pass already observed as durable.
			if seq >= st.acked {
				st.acked = seq // tighten the floor for the next cycle
			}
		}
	}
	return nil
}

// probeWrite checks the store still accepts and serves a write.
func (h *harness) probeWrite() error {
	nc, err := net.DialTimeout("tcp", h.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	rd, wr := server.NewReader(nc), server.NewWriter(nc)
	wr.WriteCommand([]byte("SET"), []byte("crashkv-probe"), []byte("alive"))
	wr.WriteCommand([]byte("GET"), []byte("crashkv-probe"))
	if err := wr.Flush(); err != nil {
		return err
	}
	set, err := rd.ReadReply()
	if err != nil {
		return err
	}
	if set.IsError() {
		return fmt.Errorf("SET: %s", set.Str)
	}
	get, err := rd.ReadReply()
	if err != nil {
		return err
	}
	if string(get.Str) != "alive" {
		return fmt.Errorf("GET after SET: got %q", get.Str)
	}
	return nil
}

// runLoadAndKill drives pipelined load from every connection, lets it
// run for a random 150–600ms, then SIGKILLs the server mid-flight —
// sometimes mid-BGSAVE, thanks to a dedicated connection firing BGSAVE
// throughout the window.
func (h *harness) runLoadAndKill(cmd *exec.Cmd, cycle int) {
	stop := make(chan struct{})
	done := make(chan struct{}, *conns+1)
	for c := 0; c < *conns; c++ {
		go func(c int) {
			defer func() { done <- struct{}{} }()
			h.loadConn(c, stop)
		}(c)
	}
	go func() {
		defer func() { done <- struct{}{} }()
		h.bgsaveConn(stop)
	}()

	live := 150*time.Millisecond + time.Duration(h.rng.Int63n(int64(450*time.Millisecond)))
	time.Sleep(live)
	cmd.Process.Kill() // SIGKILL: no drain, no flush, no goodbye
	cmd.Wait()
	h.kills++
	close(stop)
	for i := 0; i < *conns+1; i++ {
		<-done
	}
	if *verbose {
		fmt.Printf("crashkv: cycle %d: killed after %v (acked so far: %d)\n", cycle, live.Round(time.Millisecond), h.setsAcked.Load())
	}
}

// loadConn owns keys [0, keys_per_conn) of partition c and writes them
// with monotonically increasing per-key sequence numbers, journaling
// every ack. It exits on the first connection error (the kill).
func (h *harness) loadConn(c int, stop chan struct{}) {
	nc, err := net.DialTimeout("tcp", h.addr, 5*time.Second)
	if err != nil {
		return
	}
	defer nc.Close()
	rd, wr := server.NewReader(nc), server.NewWriter(nc)
	rng := rand.New(rand.NewSource(*seed + int64(c) + 1))
	for {
		select {
		case <-stop:
			return
		default:
		}
		// One pipeline window of SETs on random keys in this partition.
		idxs := make([]int, *pipeline)
		seqs := make([]int64, *pipeline)
		for i := range idxs {
			k := rng.Intn(*keysPer)
			st := &h.states[c][k]
			st.attempted++
			idxs[i], seqs[i] = k, st.attempted
			wr.WriteCommand([]byte("SET"), []byte(key(c, k)), []byte(value(c, k, st.attempted)))
		}
		if wr.Flush() != nil {
			return
		}
		for i := range idxs {
			rep, err := rd.ReadReply()
			if err != nil {
				return
			}
			if rep.IsError() {
				continue // LOADSHED etc: not acked, seq stays attempted-only
			}
			st := &h.states[c][idxs[i]]
			if seqs[i] > st.acked {
				st.acked = seqs[i]
			}
			h.setsAcked.Add(1)
			h.acked.Append("set", key(c, idxs[i]), fmt.Sprint(seqs[i]))
		}
	}
}

// bgsaveConn fires BGSAVE repeatedly so some kills land mid-checkpoint.
func (h *harness) bgsaveConn(stop chan struct{}) {
	nc, err := net.DialTimeout("tcp", h.addr, 5*time.Second)
	if err != nil {
		return
	}
	defer nc.Close()
	rd, wr := server.NewReader(nc), server.NewWriter(nc)
	for {
		select {
		case <-stop:
			return
		case <-time.After(50 * time.Millisecond):
		}
		wr.WriteCommand([]byte("BGSAVE"))
		if wr.Flush() != nil {
			return
		}
		if _, err := rd.ReadReply(); err != nil {
			return
		}
		h.bgsaves.Add(1)
	}
}
